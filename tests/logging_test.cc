#include <gtest/gtest.h>

#include <sys/stat.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/profiler.h"
#include "obs/log_ring.h"
#include "obs/observability.h"
#include "serve/inference_engine.h"
#include "serve/model_registry.h"
#include "util/logging.h"

#include "serve_test_util.h"

// Structured-logging tests: record metadata, severity filtering, text/JSON
// rendering, the per-site rate limiters (including under concurrent
// writers — this test runs in the TSan CI job), trace-id correlation
// through the serving pipeline, the bounded LogRing, and the flight
// recorder's bundle assembly and atomic directory dumps.

namespace causalformer {
namespace {

// Captures every emitted record. While registered, the built-in stderr
// output is suppressed, so tests stay quiet.
class CaptureSink : public LogSink {
 public:
  void Send(const LogRecord& record) override {
    std::lock_guard<std::mutex> lock(mu_);
    records_.push_back(record);
  }

  std::vector<LogRecord> records() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_;
  }

  size_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<LogRecord> records_;
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_min_ = MinLogSeverity();
    AddLogSink(&sink_);
  }

  void TearDown() override {
    RemoveLogSink(&sink_);
    SetMinLogSeverity(previous_min_);
    SetLogClock(obs::Clock());  // back to the real steady clock
  }

  CaptureSink sink_;
  LogSeverity previous_min_ = LogSeverity::kInfo;
};

TEST_F(LoggingTest, RecordCarriesFullMetadata) {
  CF_LOG(kWarning) << "disk almost " << "full"
                   << LogKV("free_mb", 12) << LogKV("path", "/data")
                   << LogKV("ratio", 0.97) << LogKV("readonly", false);
  const auto records = sink_.records();
  ASSERT_EQ(records.size(), 1u);
  const LogRecord& r = records[0];
  EXPECT_EQ(r.severity, LogSeverity::kWarning);
  EXPECT_EQ(std::string(r.file), "logging_test.cc");
  EXPECT_GT(r.line, 0);
  EXPECT_EQ(r.thread_id, LogThreadId());
  EXPECT_GT(r.sequence, 0u);
  EXPECT_EQ(r.trace_id, 0u);
  EXPECT_EQ(r.message, "disk almost full");
  ASSERT_EQ(r.fields.size(), 4u);
  EXPECT_EQ(r.fields[0].key, "free_mb");
  EXPECT_EQ(r.fields[0].kind, LogField::Kind::kInt);
  EXPECT_EQ(r.fields[0].int_value, 12);
  EXPECT_EQ(r.fields[1].kind, LogField::Kind::kString);
  EXPECT_EQ(r.fields[1].string_value, "/data");
  EXPECT_EQ(r.fields[2].kind, LogField::Kind::kDouble);
  EXPECT_EQ(r.fields[3].kind, LogField::Kind::kBool);
}

TEST_F(LoggingTest, SequenceNumbersAreMonotonic) {
  CF_LOG(kInfo) << "one";
  CF_LOG(kInfo) << "two";
  CF_LOG(kInfo) << "three";
  const auto records = sink_.records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_LT(records[0].sequence, records[1].sequence);
  EXPECT_LT(records[1].sequence, records[2].sequence);
}

TEST_F(LoggingTest, TimestampsReadTheInstalledClock) {
  serve::testutil::ScriptedClock clock(100.0);
  SetLogClock(obs::Clock(clock.fn()));
  CF_LOG(kInfo) << "at one hundred";
  clock.Advance(2.5);
  CF_LOG(kInfo) << "later";
  const auto records = sink_.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records[0].seconds, 100.0);
  EXPECT_DOUBLE_EQ(records[1].seconds, 102.5);
}

TEST_F(LoggingTest, SeverityThresholdFiltersBeforeEmission) {
  SetMinLogSeverity(LogSeverity::kWarning);
  CF_LOG(kDebug) << "dropped";
  CF_LOG(kInfo) << "dropped too";
  CF_LOG(kWarning) << "kept";
  CF_LOG(kError) << "kept too";
  const auto records = sink_.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].message, "kept");
  EXPECT_EQ(records[1].message, "kept too");
}

TEST_F(LoggingTest, ScopedTraceIdTagsRecordsAndRestores) {
  EXPECT_EQ(CurrentLogTraceId(), 0u);
  {
    ScopedLogTraceId outer(7);
    EXPECT_EQ(CurrentLogTraceId(), 7u);
    CF_LOG(kInfo) << "in outer";
    {
      ScopedLogTraceId inner(9);
      CF_LOG(kInfo) << "in inner";
    }
    CF_LOG(kInfo) << "back in outer";
  }
  EXPECT_EQ(CurrentLogTraceId(), 0u);
  CF_LOG(kInfo) << "no trace";
  const auto records = sink_.records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].trace_id, 7u);
  EXPECT_EQ(records[1].trace_id, 9u);
  EXPECT_EQ(records[2].trace_id, 7u);
  EXPECT_EQ(records[3].trace_id, 0u);
}

// ---- Rendering ------------------------------------------------------------

TEST(LogFormatTest, TextLineShape) {
  LogRecord r;
  r.severity = LogSeverity::kWarning;
  r.seconds = 12.345678;
  r.thread_id = 3;
  r.trace_id = 7;
  r.file = "engine.cc";
  r.line = 42;
  r.message = "queue full";
  r.fields.push_back(LogKV("depth", 128));
  r.suppressed = 5;
  EXPECT_EQ(FormatLogRecordText(r),
            "[W 12.345678 engine.cc:42 tid=3 trace=7] queue full depth=128"
            " (suppressed 5)");
}

TEST(LogFormatTest, TextLineOmitsEmptyOptionals) {
  LogRecord r;
  r.severity = LogSeverity::kInfo;
  r.seconds = 1.0;
  r.thread_id = 1;
  r.file = "a.cc";
  r.line = 1;
  r.message = "plain";
  EXPECT_EQ(FormatLogRecordText(r), "[I 1.000000 a.cc:1 tid=1] plain");
}

TEST(LogFormatTest, JsonEscapesEverythingHostile) {
  LogRecord r;
  r.severity = LogSeverity::kError;
  r.seconds = 2.0;
  r.thread_id = 1;
  r.file = "a.cc";
  r.line = 9;
  r.message = "quote \" slash \\ newline \n tab \t bell \x01 done";
  r.fields.push_back(LogKV("path", "C:\\tmp\n"));
  const std::string json = FormatLogRecordJson(r);
  EXPECT_NE(json.find("quote \\\" slash \\\\ newline \\n tab \\t bell "
                      "\\u0001 done"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"path\":\"C:\\\\tmp\\n\""), std::string::npos)
      << json;
  // No raw control bytes may survive into the JSON line.
  for (const char c : json) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(LogFormatTest, JsonCarriesTypedFields) {
  LogRecord r;
  r.severity = LogSeverity::kInfo;
  r.seconds = 0.5;
  r.thread_id = 2;
  r.trace_id = 11;
  r.file = "b.cc";
  r.line = 3;
  r.message = "m";
  r.fields.push_back(LogKV("count", 7));
  r.fields.push_back(LogKV("on", true));
  r.fields.push_back(LogKV("ratio", 0.25));
  const std::string json = FormatLogRecordJson(r);
  EXPECT_NE(json.find("\"severity\":\"I\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace\":11"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"on\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"ratio\":0.25"), std::string::npos) << json;
}

// ---- Rate limiting --------------------------------------------------------

TEST_F(LoggingTest, EveryNEmitsFirstAndEveryNth) {
  for (int i = 0; i < 10; ++i) {
    CF_LOG_EVERY_N(kWarning, 3) << "tick " << i;
  }
  const auto records = sink_.records();
  ASSERT_EQ(records.size(), 4u);  // i = 0, 3, 6, 9
  EXPECT_EQ(records[0].message, "tick 0");
  EXPECT_EQ(records[0].suppressed, 0u);
  EXPECT_EQ(records[1].message, "tick 3");
  EXPECT_EQ(records[1].suppressed, 2u);
  EXPECT_EQ(records[3].message, "tick 9");
}

TEST_F(LoggingTest, EveryNCountsExactlyUnderConcurrentWriters) {
  // 8 threads × 96 iterations through one CF_LOG_EVERY_N(…, 16) site:
  // exactly (8·96)/16 records emerge, whatever the interleaving. The
  // TSan job proves the per-site state and sink fan-out race-free.
  constexpr int kThreads = 8;
  constexpr int kIters = 96;
  serve::testutil::Barrier barrier(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&barrier] {
      barrier.Wait();
      for (int i = 0; i < kIters; ++i) {
        CF_LOG_EVERY_N(kWarning, 16) << "storm";
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const size_t emitted = sink_.count();
  EXPECT_EQ(emitted, static_cast<size_t>(kThreads * kIters / 16));
  // Every emit after the very first reports the n-1 calls it stands for.
  uint64_t suppressed = 0;
  for (const auto& r : sink_.records()) suppressed += r.suppressed;
  EXPECT_EQ(suppressed, (emitted - 1) * 15u);
}

TEST_F(LoggingTest, ThrottledFollowsTheTokenBucket) {
  serve::testutil::ScriptedClock clock(10.0);
  SetLogClock(obs::Clock(clock.fn()));
  // 1 token/second, burst 2: the first two emit, then one per second.
  // The limiter state is per-site, so the whole scenario drives ONE
  // CF_LOG_THROTTLED occurrence through the scripted clock.
  for (int i = 0; i < 6; ++i) {
    CF_LOG_THROTTLED(kWarning, 1.0, 2.0) << "burst " << i;
    if (i == 4) {
      EXPECT_EQ(sink_.count(), 2u);  // burst spent, i = 2..4 suppressed
      clock.Advance(1.0);            // refill one token
    }
  }
  const auto records = sink_.records();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].message, "burst 5");
  EXPECT_EQ(records[2].suppressed, 3u);  // the three dropped burst calls
}

TEST_F(LoggingTest, ThrottledSuppressedCountCarriesOverExactly) {
  // The suppressed counter is a carryover, not a running total: every drop
  // is charged to exactly the NEXT emission, and an emission with no drops
  // before it reports zero. Three windows through one site: 4 drops, then
  // 2 drops, then none — the WindowScheduler's drop warning relies on this
  // to report "suppressed N" figures an operator can sum losslessly.
  serve::testutil::ScriptedClock clock(50.0);
  SetLogClock(obs::Clock(clock.fn()));
  const auto tick = [&] { CF_LOG_THROTTLED(kWarning, 1.0, 1.0) << "drop"; };

  tick();                                  // burst token: emits, suppressed 0
  for (int i = 0; i < 4; ++i) tick();      // window 1: 4 drops
  clock.Advance(1.0);
  tick();                                  // emits, carries the 4
  for (int i = 0; i < 2; ++i) tick();      // window 2: 2 drops
  clock.Advance(1.0);
  tick();                                  // emits, carries the 2 — not 6
  clock.Advance(1.0);
  tick();                                  // quiet window: nothing carried

  const auto records = sink_.records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].suppressed, 0u);
  EXPECT_EQ(records[1].suppressed, 4u);
  EXPECT_EQ(records[2].suppressed, 2u);  // reset after each emission
  EXPECT_EQ(records[3].suppressed, 0u);
  uint64_t total = 0;
  for (const auto& r : records) total += r.suppressed;
  EXPECT_EQ(total, 6u);  // emitted + suppressed == calls, losslessly
}

TEST(LogTokenBucketTest, RefillsAtTheConfiguredRate) {
  serve::testutil::ScriptedClock clock(0.0);
  SetLogClock(obs::Clock(clock.fn()));
  LogTokenBucket bucket(2.0, 1.0);  // 2 tokens/second, burst 1
  EXPECT_TRUE(bucket.Sample().emit);
  EXPECT_FALSE(bucket.Sample().emit);
  clock.Advance(0.25);  // half a token: still dry
  EXPECT_FALSE(bucket.Sample().emit);
  clock.Advance(0.25);  // a full token now
  const auto sampled = bucket.Sample();
  EXPECT_TRUE(sampled.emit);
  EXPECT_EQ(sampled.suppressed, 2u);
  SetLogClock(obs::Clock());
}

// ---- LogRing --------------------------------------------------------------

TEST(LogRingTest, RetainsNewestWithinCapacityAndCountsAppends) {
  obs::LogRing ring(16);
  LogRecord r;
  r.file = "x.cc";
  for (uint64_t i = 1; i <= 100; ++i) {
    r.sequence = i;
    ring.Append(r);
  }
  EXPECT_EQ(ring.total_appended(), 100u);
  const auto tail = ring.Tail();
  // Single-threaded appends land in one stripe, so retention is that
  // stripe's share of capacity — bounded, newest-last, sequence-ordered.
  ASSERT_FALSE(tail.empty());
  EXPECT_LE(tail.size(), 16u);
  EXPECT_EQ(tail.back().sequence, 100u);
  for (size_t i = 1; i < tail.size(); ++i) {
    EXPECT_LT(tail[i - 1].sequence, tail[i].sequence);
  }
}

TEST(LogRingTest, TailLimitKeepsTheNewest) {
  obs::LogRing ring(64);
  LogRecord r;
  for (uint64_t i = 1; i <= 8; ++i) {
    r.sequence = i;
    ring.Append(r);
  }
  const auto tail = ring.Tail(3);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].sequence, 6u);
  EXPECT_EQ(tail[2].sequence, 8u);
}

TEST(LogRingTest, ConcurrentAppendersNeverLoseTheBound) {
  obs::LogRing ring(64);
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  serve::testutil::Barrier barrier(kThreads);
  std::atomic<uint64_t> next_seq{1};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      barrier.Wait();
      LogRecord r;
      for (int i = 0; i < kIters; ++i) {
        r.sequence = next_seq.fetch_add(1);
        r.thread_id = LogThreadId();
        ring.Append(r);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ring.total_appended(),
            static_cast<uint64_t>(kThreads * kIters));
  const auto tail = ring.Tail();
  EXPECT_LE(tail.size(), 64u + obs::kLogRingStripes);  // rounding headroom
  for (size_t i = 1; i < tail.size(); ++i) {
    EXPECT_LT(tail[i - 1].sequence, tail[i].sequence);
  }
}

TEST_F(LoggingTest, GlobalRingReceivesRecordsEvenWithSinksRegistered) {
  const uint64_t before = obs::GlobalLogRing().total_appended();
  CF_LOG(kInfo) << "ring me";
  EXPECT_EQ(obs::GlobalLogRing().total_appended(), before + 1);
  const auto tail = obs::GlobalLogRing().Tail(1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].message, "ring me");
}

// ---- Trace-id correlation through the serving pipeline --------------------

TEST_F(LoggingTest, EngineLogsCarryTheRequestTraceId) {
  serve::ModelRegistry registry;
  ASSERT_TRUE(
      registry.Register("m", serve::testutil::TinyModel()).ok());
  obs::Observability obs;
  serve::EngineOptions eopts;
  eopts.obs = &obs;
  // Logs emitted inside batch execution (here: from the detect observer,
  // which runs on the executor thread) must carry the owning trace's id.
  eopts.detect_observer_for_testing = [](const serve::CacheKey&) {
    CF_LOG(kInfo) << "executing batch";
  };
  serve::InferenceEngine engine(&registry, eopts);

  serve::DiscoveryRequest request;
  request.model = "m";
  request.windows = serve::testutil::RandomWindows(2, 77);
  request.trace = obs.StartTrace("decode");
  const uint64_t trace_id = request.trace->id();
  const auto response = engine.Discover(std::move(request));
  ASSERT_TRUE(response.status.ok());

  bool saw_execute_log = false;
  for (const auto& r : sink_.records()) {
    if (r.message == "executing batch") {
      saw_execute_log = true;
      EXPECT_EQ(r.trace_id, trace_id);
    }
  }
  EXPECT_TRUE(saw_execute_log);
}

// ---- Flight recorder ------------------------------------------------------

TEST(FlightRecorderTest, BundleWithoutObservabilityStillHasLogsAndState) {
  obs::FlightRecorder recorder(nullptr);
  recorder.AddStateProvider("unit", [] { return std::string("ok=1"); });
  const auto bundle = recorder.BuildBundle();
  ASSERT_EQ(bundle.files.size(), 5u);
  EXPECT_EQ(bundle.files[0].name, "logs.txt");
  EXPECT_EQ(bundle.files[1].name, "metrics.txt");
  EXPECT_EQ(bundle.files[2].name, "trace.json");
  EXPECT_EQ(bundle.files[3].name, "traces.txt");
  EXPECT_EQ(bundle.files[4].name, "state.txt");
  EXPECT_NE(bundle.files[4].content.find("== unit ==\nok=1\n"),
            std::string::npos);
  EXPECT_NE(bundle.files[2].content.find("\"traceEvents\":["),
            std::string::npos);
}

TEST(FlightRecorderTest, DumpWritesEveryBundleFileAtomically) {
  obs::Observability obs;
  obs::FlightRecorderOptions options;
  options.directory = "logging_test_dumps";
  obs::FlightRecorder recorder(&obs, options);
  const auto path = recorder.DumpToDirectory();
  ASSERT_TRUE(path.ok()) << path.status().ToString();
  EXPECT_EQ(path->rfind(options.directory + "/dump_", 0), 0u) << *path;
  for (const char* name :
       {"logs.txt", "metrics.txt", "trace.json", "traces.txt", "state.txt"}) {
    struct stat st;
    EXPECT_EQ(::stat((*path + "/" + name).c_str(), &st), 0)
        << "missing " << name;
  }
  // The temporary staging directory must be gone after the rename.
  struct stat st;
  const std::string stem = path->substr(path->rfind('/') + 1);
  EXPECT_NE(::stat((options.directory + "/." + stem + ".tmp").c_str(), &st),
            0);
  // Two dumps in the same process must land in distinct directories.
  const auto second = recorder.DumpToDirectory();
  ASSERT_TRUE(second.ok());
  EXPECT_NE(*path, *second);

  // Cleanup (best-effort; ignores failures).
  for (const auto& dir : {*path, *second}) {
    for (const char* name : {"logs.txt", "metrics.txt", "trace.json",
                             "traces.txt", "state.txt"}) {
      std::remove((dir + "/" + name).c_str());
    }
    ::rmdir(dir.c_str());
  }
  ::rmdir(options.directory.c_str());
}

// Regression: the dump-name sequence used to be per-recorder, so two
// recorders (the serving stack plus a test harness, say) dumping into one
// directory within the same millisecond produced identical stems and the
// second rename silently replaced the first bundle. The sequence is now
// process-wide; every dump must land in its own directory.
TEST(FlightRecorderTest, TwoRecordersNeverCollideOnDumpNames) {
  obs::FlightRecorderOptions options;
  options.directory = "logging_test_collide";
  obs::FlightRecorder first(nullptr, options);
  obs::FlightRecorder second(nullptr, options);

  std::vector<std::string> dumped;
  for (int i = 0; i < 3; ++i) {
    const auto a = first.DumpToDirectory();
    const auto b = second.DumpToDirectory();
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    dumped.push_back(*a);
    dumped.push_back(*b);
  }
  std::set<std::string> distinct(dumped.begin(), dumped.end());
  EXPECT_EQ(distinct.size(), dumped.size()) << "dump names collided";

  for (const auto& dir : dumped) {
    for (const char* name : {"logs.txt", "metrics.txt", "trace.json",
                             "traces.txt", "state.txt"}) {
      std::remove((dir + "/" + name).c_str());
    }
    ::rmdir(dir.c_str());
  }
  ::rmdir(options.directory.c_str());
}

TEST(FlightRecorderTest, AttachedProfilerAddsFoldedMember) {
  obs::FlightRecorder recorder(nullptr);
  obs::Profiler profiler;
  recorder.set_profiler(&profiler);
  profiler.SampleNow();

  const auto bundle = recorder.BuildBundle();
  ASSERT_EQ(bundle.files.size(), 6u);
  EXPECT_EQ(bundle.files[5].name, "profile.folded");
  // One sample -> one folded line ending in its count.
  EXPECT_NE(bundle.files[5].content.find(" 1\n"), std::string::npos)
      << bundle.files[5].content;

  // Detaching removes the member again.
  recorder.set_profiler(nullptr);
  EXPECT_EQ(recorder.BuildBundle().files.size(), 5u);
}

}  // namespace
}  // namespace causalformer
