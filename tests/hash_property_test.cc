#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/detector.h"
#include "serve/score_cache.h"
#include "stream/ring_series.h"
#include "tensor/tensor.h"
#include "util/rng.h"

// Property tests for the hash/key machinery the in-flight dedup and score
// cache stand on. Two families of invariants:
//
//  1. Identity: RollingWindowHasher digests are bit-identical to
//     serve::HashWindows over the materialised tensor, across randomized
//     series counts, widths, strides, append chunkings and ring wraps — so
//     an incrementally hashed stream window and a tensor-hashed ad-hoc query
//     land on the same dedup/cache key whenever their bytes agree.
//
//  2. Separation: epsilon- and data-perturbations of the smallest
//     representable step, and every detector-option field, produce distinct
//     fingerprints — dedup must never coalesce work the detector would
//     treat differently.

namespace causalformer {
namespace stream {
namespace {

// Deterministic "random" int in [lo, hi] drawn from the test rng.
int64_t RandInt(Rng* rng, int64_t lo, int64_t hi) {
  const Tensor t = Tensor::Randn(Shape{1}, rng);
  const double unit = 0.5 * (1.0 + std::erf(t.data()[0] / std::sqrt(2.0)));
  const auto span = static_cast<double>(hi - lo + 1);
  int64_t v = lo + static_cast<int64_t>(unit * span);
  if (v > hi) v = hi;
  if (v < lo) v = lo;
  return v;
}

TEST(HashPropertyTest, RollingHasherMatchesHashWindowsRandomized) {
  Rng rng(2027);
  constexpr int kTrials = 40;
  int windows_checked = 0;
  for (int trial = 0; trial < kTrials; ++trial) {
    const int64_t n = RandInt(&rng, 1, 6);
    const int64_t width = RandInt(&rng, 1, 10);
    const int64_t stride = RandInt(&rng, 1, 6);
    // Capacities down at width+stride force ring wrap-around; larger ones
    // keep long histories — both must hash identically.
    const int64_t capacity = width + stride * RandInt(&rng, 1, 4);
    const int64_t length = capacity + stride * RandInt(&rng, 2, 6);

    RingSeries ring(n, capacity);
    RollingWindowHasher hasher(n, capacity);
    const Tensor series = Tensor::Randn(Shape{n, length}, &rng);

    int64_t fed = 0;
    int64_t next_end = width;
    while (fed < length) {
      // Random chunking: appends of 1..stride+2 columns, so digest batches
      // never line up with window boundaries by construction.
      const int64_t chunk = std::min(RandInt(&rng, 1, stride + 2),
                                     length - fed);
      const Tensor samples = Slice(series, 1, fed, fed + chunk).Detach();
      ASSERT_TRUE(ring.Append(samples).ok());
      ASSERT_TRUE(hasher.Append(samples).ok());
      fed += chunk;

      for (; next_end <= fed; next_end += stride) {
        if (next_end - width < ring.oldest()) continue;  // overwritten
        const auto window = ring.Window(next_end, width);
        const auto rolling = hasher.Window(next_end, width);
        ASSERT_TRUE(window.ok() && rolling.ok());
        const serve::WindowHash full = serve::HashWindows(*window);
        EXPECT_TRUE(*rolling == full)
            << "trial " << trial << " n=" << n << " width=" << width
            << " stride=" << stride << " end=" << next_end;
        ++windows_checked;
      }
    }
  }
  // The property actually covered a meaningful sample of geometries.
  EXPECT_GT(windows_checked, 100);
}

TEST(HashPropertyTest, SingleUlpWindowPerturbationsNeverCollide) {
  Rng rng(2028);
  const Tensor base = Tensor::Randn(Shape{1, 4, 8}, &rng);
  const serve::WindowHash base_hash = serve::HashWindows(base);

  std::set<std::pair<uint64_t, uint64_t>> seen;
  seen.emplace(base_hash.lo, base_hash.hi);
  // Perturb every element, one at a time, by one ulp in each direction: the
  // perturbed request set of the stress harness, exhaustively.
  for (int64_t i = 0; i < base.numel(); ++i) {
    for (const float towards : {2.0f, -2.0f}) {
      Tensor perturbed = base.Clone();
      float& cell = perturbed.data()[i];
      const float next = std::nextafterf(cell, towards * (cell == 0 ? 1 : cell));
      ASSERT_NE(next, cell);
      cell = next;
      const serve::WindowHash hash = serve::HashWindows(perturbed);
      EXPECT_FALSE(hash == base_hash) << "element " << i;
      EXPECT_TRUE(seen.emplace(hash.lo, hash.hi).second)
          << "collision at element " << i;
    }
  }
}

TEST(HashPropertyTest, EpsilonFingerprintsNeverCollide) {
  // Walk epsilon through consecutive representable floats and a spread of
  // magnitudes: every distinct bit pattern must produce a distinct options
  // fingerprint (the cache/dedup key component).
  std::set<std::string> fingerprints;
  core::DetectorOptions options;
  float epsilon = 1e-6f;
  for (int i = 0; i < 200; ++i) {
    options.epsilon = epsilon;
    EXPECT_TRUE(fingerprints.insert(serve::EncodeDetectorOptions(options))
                    .second)
        << "ulp step " << i;
    epsilon = std::nextafterf(epsilon, 1.0f);
  }
  for (const float magnitude : {1e-8f, 1e-7f, 2e-6f, 1e-3f, 0.5f}) {
    options.epsilon = magnitude;
    EXPECT_TRUE(fingerprints.insert(serve::EncodeDetectorOptions(options))
                    .second);
  }
  EXPECT_EQ(fingerprints.size(), 205u);
}

TEST(HashPropertyTest, EveryOptionFieldAffectsTheFingerprint) {
  const core::DetectorOptions base;
  const std::string base_fp = serve::EncodeDetectorOptions(base);

  const auto differs = [&](core::DetectorOptions changed) {
    return serve::EncodeDetectorOptions(changed) != base_fp;
  };
  core::DetectorOptions o = base;
  o.num_clusters = 3;
  EXPECT_TRUE(differs(o));
  o = base;
  o.top_clusters = 2;
  EXPECT_TRUE(differs(o));
  o = base;
  o.max_windows = 64;
  EXPECT_TRUE(differs(o));
  o = base;
  o.use_interpretation = false;
  EXPECT_TRUE(differs(o));
  o = base;
  o.use_relevance = false;
  EXPECT_TRUE(differs(o));
  o = base;
  o.use_gradient = false;
  EXPECT_TRUE(differs(o));
  o = base;
  o.bias_absorption = false;
  EXPECT_TRUE(differs(o));
  o = base;
  o.epsilon = std::nextafterf(base.epsilon, 1.0f);
  EXPECT_TRUE(differs(o));
}

TEST(HashPropertyTest, DistinctGenerationsAndModelsSeparateKeys) {
  // The remaining key components: same window + options under a different
  // model name or registry generation must compare (and hash) apart.
  Rng rng(2029);
  const Tensor windows = Tensor::Randn(Shape{1, 3, 8}, &rng);
  serve::CacheKey a{"m", serve::HashWindows(windows), "o", 1};
  serve::CacheKey b = a;
  EXPECT_TRUE(a == b);
  b.generation = 2;
  EXPECT_FALSE(a == b);
  b = a;
  b.model = "m2";
  EXPECT_FALSE(a == b);
  b = a;
  b.options = "o2";
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace stream
}  // namespace causalformer
