#include <gtest/gtest.h>

#include <cmath>

#include "baselines/clstm.h"
#include "baselines/cmlp.h"
#include "baselines/cuts.h"
#include "baselines/dvgnn.h"
#include "baselines/method.h"
#include "baselines/tcdf.h"
#include "baselines/var_granger.h"
#include "data/timeseries.h"
#include "graph/metrics.h"

namespace causalformer {
namespace {

using baselines::BuildLaggedDesign;
using baselines::LaggedDesign;
using baselines::MethodKind;
using baselines::MethodResult;

// S0 -> S1 at a configurable lag, strong coupling, weak noise.
data::Dataset StrongPair(Rng* rng, int lag, int64_t length = 500) {
  const int64_t burn = 20;
  std::vector<float> x0(length + burn, 0.0f), x1(length + burn, 0.0f);
  for (int64_t t = 1; t < length + burn; ++t) {
    x0[t] = 0.2f * x0[t - 1] + 0.9f * static_cast<float>(rng->Normal());
    const float drive = t >= lag ? x0[t - lag] : 0.0f;
    x1[t] = 0.2f * x1[t - 1] + 1.3f * drive +
            0.2f * static_cast<float>(rng->Normal());
  }
  Tensor series = Tensor::Zeros(Shape{2, length});
  for (int64_t t = 0; t < length; ++t) {
    series.at({0, t}) = x0[t + burn];
    series.at({1, t}) = x1[t + burn];
  }
  data::StandardizeSeries(series);
  CausalGraph truth(2);
  truth.AddEdge(0, 1, lag);
  truth.AddEdge(0, 0, 1);
  truth.AddEdge(1, 1, 1);
  return data::Dataset("pair", std::move(series), std::move(truth));
}

TEST(LaggedDesignTest, LayoutMatchesDocumentedOrder) {
  Tensor s = Tensor::FromVector(Shape{2, 6}, {0, 1, 2, 3, 4, 5,
                                              10, 11, 12, 13, 14, 15});
  const LaggedDesign d = BuildLaggedDesign(s, 3);
  EXPECT_EQ(d.inputs.shape(), (Shape{3, 6}));
  EXPECT_EQ(d.targets.shape(), (Shape{3, 2}));
  // Sample 0 is t=3: lags of series 0 are [2,1,0]; of series 1 [12,11,10].
  EXPECT_FLOAT_EQ(d.inputs.at({0, 0}), 2.0f);   // series 0, lag 1
  EXPECT_FLOAT_EQ(d.inputs.at({0, 1}), 1.0f);   // series 0, lag 2
  EXPECT_FLOAT_EQ(d.inputs.at({0, 2}), 0.0f);   // series 0, lag 3
  EXPECT_FLOAT_EQ(d.inputs.at({0, 3}), 12.0f);  // series 1, lag 1
  EXPECT_FLOAT_EQ(d.targets.at({0, 0}), 3.0f);
  EXPECT_FLOAT_EQ(d.targets.at({0, 1}), 13.0f);
}

TEST(CmlpTest, RecoversStrongCauseAndLag) {
  Rng rng(31);
  const data::Dataset ds = StrongPair(&rng, /*lag=*/2);
  baselines::CmlpOptions opt;
  opt.epochs = 150;
  baselines::Cmlp cmlp(opt);
  const MethodResult res = cmlp.Discover(ds.series, &rng);
  EXPECT_GT(res.scores.at(0, 1), res.scores.at(1, 0));
  EXPECT_TRUE(res.graph.HasEdge(0, 1));
  EXPECT_TRUE(res.has_delays);
  EXPECT_EQ(res.delays[0][1], 2);
}

TEST(ClstmTest, RecoversStrongCause) {
  Rng rng(32);
  const data::Dataset ds = StrongPair(&rng, /*lag=*/1, 400);
  baselines::ClstmOptions opt;
  opt.epochs = 15;
  baselines::Clstm clstm(opt);
  const MethodResult res = clstm.Discover(ds.series, &rng);
  EXPECT_GT(res.scores.at(0, 1), res.scores.at(1, 0));
  EXPECT_FALSE(res.has_delays);
}

TEST(TcdfTest, RecoversStrongCauseAndLag) {
  Rng rng(33);
  const data::Dataset ds = StrongPair(&rng, /*lag=*/2);
  baselines::TcdfOptions opt;
  opt.epochs = 200;
  baselines::Tcdf tcdf(opt);
  const MethodResult res = tcdf.Discover(ds.series, &rng);
  EXPECT_GT(res.scores.at(0, 1), res.scores.at(1, 0));
  EXPECT_TRUE(res.has_delays);
  EXPECT_EQ(res.delays[0][1], 2);
}

TEST(DvgnnTest, RecoversStrongCause) {
  Rng rng(34);
  const data::Dataset ds = StrongPair(&rng, /*lag=*/1);
  baselines::DvgnnOptions opt;
  opt.epochs = 150;
  baselines::Dvgnn dvgnn(opt);
  const MethodResult res = dvgnn.Discover(ds.series, &rng);
  EXPECT_GT(res.scores.at(0, 1), res.scores.at(1, 0));
  EXPECT_FALSE(res.has_delays);
}

TEST(CutsTest, RecoversStrongCauseDespiteMissingData) {
  Rng rng(35);
  const data::Dataset ds = StrongPair(&rng, /*lag=*/1);
  baselines::CutsOptions opt;
  opt.epochs = 150;
  opt.missing_fraction = 0.15;
  baselines::Cuts cuts(opt);
  const MethodResult res = cuts.Discover(ds.series, &rng);
  EXPECT_GT(res.scores.at(0, 1), res.scores.at(1, 0));
  EXPECT_FALSE(res.has_delays);
}

TEST(VarGrangerTest, RecoversStrongCauseAndLagExactly) {
  Rng rng(37);
  const data::Dataset ds = StrongPair(&rng, /*lag=*/3);
  baselines::VarGranger var;
  const MethodResult res = var.Discover(ds.series, &rng);
  EXPECT_GT(res.scores.at(0, 1), res.scores.at(1, 0));
  EXPECT_TRUE(res.graph.HasEdge(0, 1));
  EXPECT_TRUE(res.has_delays);
  EXPECT_EQ(res.delays[0][1], 3);
}

TEST(VarGrangerTest, IsDeterministic) {
  Rng rng(38);
  const data::Dataset ds = StrongPair(&rng, 1, 300);
  baselines::VarGranger var;
  Rng r1(1), r2(2);
  const MethodResult a = var.Discover(ds.series, &r1);
  const MethodResult b = var.Discover(ds.series, &r2);
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      EXPECT_DOUBLE_EQ(a.scores.at(i, j), b.scores.at(i, j));
    }
  }
}

TEST(VarGrangerTest, SelfDependenceDetected) {
  // A purely autoregressive pair: only self-loops should score high.
  Rng rng(39);
  const int64_t len = 400;
  Tensor series = Tensor::Zeros(Shape{2, len});
  float a0 = 0.0f, a1 = 0.0f;
  for (int64_t t = 0; t < len; ++t) {
    a0 = 0.8f * a0 + 0.4f * static_cast<float>(rng.Normal());
    a1 = 0.8f * a1 + 0.4f * static_cast<float>(rng.Normal());
    series.at({0, t}) = a0;
    series.at({1, t}) = a1;
  }
  data::StandardizeSeries(series);
  baselines::VarGranger var;
  const MethodResult res = var.Discover(series, &rng);
  EXPECT_GT(res.scores.at(0, 0), res.scores.at(1, 0));
  EXPECT_GT(res.scores.at(1, 1), res.scores.at(0, 1));
}

TEST(MethodFactoryTest, CreatesEveryKind) {
  for (const MethodKind kind :
       {MethodKind::kCmlp, MethodKind::kClstm, MethodKind::kTcdf,
        MethodKind::kDvgnn, MethodKind::kCuts}) {
    auto method = baselines::CreateMethod(kind, /*fast=*/true);
    ASSERT_NE(method, nullptr);
    EXPECT_EQ(method->name(), baselines::ToString(kind));
  }
}

TEST(MethodFactoryTest, FastModeStillDiscovers) {
  Rng rng(36);
  const data::Dataset ds = StrongPair(&rng, 1, 250);
  for (const MethodKind kind :
       {MethodKind::kCmlp, MethodKind::kTcdf, MethodKind::kDvgnn,
        MethodKind::kCuts}) {
    Rng run_rng = rng.Split();
    auto method = baselines::CreateMethod(kind, /*fast=*/true);
    const MethodResult res = method->Discover(ds.series, &run_rng);
    EXPECT_EQ(res.graph.num_series(), 2) << baselines::ToString(kind);
    for (int i = 0; i < 2; ++i) {
      for (int j = 0; j < 2; ++j) {
        EXPECT_TRUE(std::isfinite(res.scores.at(i, j)))
            << baselines::ToString(kind);
      }
    }
  }
}

TEST(FinalizeResultTest, FillsDefaultDelays) {
  MethodResult res(2);
  res.scores.set(0, 1, 0.9);
  res.scores.set(1, 1, 0.1);
  res.scores.set(0, 0, 0.8);
  res.scores.set(1, 0, 0.05);
  baselines::FinalizeResult(&res);
  ASSERT_TRUE(res.graph.HasEdge(0, 1));
  EXPECT_EQ(res.graph.FindEdge(0, 1)->delay, 1);  // default when unestimated
}

}  // namespace
}  // namespace causalformer
