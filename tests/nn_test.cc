#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/conv1d.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/lstm.h"
#include "nn/module.h"
#include "tensor/ops.h"

namespace causalformer {
namespace {

using nn::Conv1dCausal;
using nn::Linear;
using nn::Lstm;
using nn::LstmCell;

TEST(ModuleTest, ParameterRegistryCollectsChildren) {
  Rng rng(1);
  struct Net : nn::Module {
    Net(Rng* rng) : a(3, 4, rng), b(4, 2, rng) {
      RegisterModule("a", &a);
      RegisterModule("b", &b);
    }
    Linear a, b;
  } net(&rng);
  const auto named = net.NamedParameters();
  // a.weight, a.bias, b.weight, b.bias
  ASSERT_EQ(named.size(), 4u);
  EXPECT_EQ(named[0].first, "a.weight");
  EXPECT_EQ(net.NumParameters(), 3 * 4 + 4 + 4 * 2 + 2);
  for (const auto& p : net.Parameters()) EXPECT_TRUE(p.requires_grad());
}

TEST(ModuleTest, ZeroGradClearsAll) {
  Rng rng(2);
  Linear lin(2, 2, &rng);
  Sum(lin.Forward(Tensor::Ones(Shape{3, 2}))).Backward();
  ASSERT_TRUE(lin.weight().grad().defined());
  EXPECT_NE(lin.weight().grad().at({0, 0}), 0.0f);
  lin.ZeroGrad();
  EXPECT_FLOAT_EQ(lin.weight().grad().at({0, 0}), 0.0f);
}

TEST(LinearTest, ComputesAffineMap) {
  Rng rng(3);
  Linear lin(2, 3, &rng);
  // Overwrite weights for a deterministic check.
  Tensor w = lin.weight();
  for (int64_t i = 0; i < 6; ++i) w.data()[i] = static_cast<float>(i);
  Tensor b = lin.bias();
  for (int64_t i = 0; i < 3; ++i) b.data()[i] = 1.0f;
  Tensor x = Tensor::FromVector(Shape{1, 2}, {1, 2});
  Tensor y = lin.Forward(x);
  // y = [1,2] @ [[0,1,2],[3,4,5]] + 1 = [6+1, 9+1, 12+1]
  EXPECT_FLOAT_EQ(y.at({0, 0}), 7.0f);
  EXPECT_FLOAT_EQ(y.at({0, 1}), 10.0f);
  EXPECT_FLOAT_EQ(y.at({0, 2}), 13.0f);
}

TEST(LinearTest, SupportsBatchedThreeDInput) {
  Rng rng(4);
  Linear lin(5, 3, &rng);
  Tensor y = lin.Forward(Tensor::Ones(Shape{2, 7, 5}));
  EXPECT_EQ(y.shape(), (Shape{2, 7, 3}));
}

TEST(LinearTest, NoBiasVariant) {
  Rng rng(5);
  Linear lin(2, 2, &rng, /*bias=*/false);
  EXPECT_FALSE(lin.has_bias());
  EXPECT_EQ(lin.Parameters().size(), 1u);
  Tensor y = lin.Forward(Tensor::Zeros(Shape{1, 2}));
  EXPECT_FLOAT_EQ(y.at({0, 0}), 0.0f);
}

TEST(InitTest, HeNormalHasExpectedScale) {
  Rng rng(6);
  Tensor w = nn::HeNormal(Shape{1000, 10}, 1000, &rng);
  double sq = 0.0;
  for (int64_t i = 0; i < w.numel(); ++i) sq += w.data()[i] * w.data()[i];
  const double stddev = std::sqrt(sq / w.numel());
  EXPECT_NEAR(stddev, std::sqrt(2.0 / 1000.0), 0.005);
}

TEST(InitTest, XavierUniformBounded) {
  Rng rng(7);
  Tensor w = nn::XavierUniform(Shape{50, 50}, 50, 50, &rng);
  const float bound = std::sqrt(6.0f / 100.0f);
  for (int64_t i = 0; i < w.numel(); ++i) {
    EXPECT_LE(std::fabs(w.data()[i]), bound);
  }
}

TEST(DropoutTest, IdentityWhenNotTraining) {
  Rng rng(8);
  Tensor x = Tensor::Ones(Shape{10});
  Tensor y = nn::Dropout(x, 0.5f, /*training=*/false, &rng);
  EXPECT_EQ(y.impl(), x.impl());
}

TEST(DropoutTest, ScalesSurvivors) {
  Rng rng(9);
  Tensor x = Tensor::Ones(Shape{10000});
  Tensor y = nn::Dropout(x, 0.5f, /*training=*/true, &rng);
  double sum = 0.0;
  int64_t zeros = 0;
  for (int64_t i = 0; i < y.numel(); ++i) {
    sum += y.data()[i];
    if (y.data()[i] == 0.0f) ++zeros;
    else EXPECT_FLOAT_EQ(y.data()[i], 2.0f);
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.numel(), 0.5, 0.05);
  EXPECT_NEAR(sum / y.numel(), 1.0, 0.1);
}

TEST(ClampTest, ValuesAndGradient) {
  Tensor x =
      Tensor::FromVector(Shape{4}, {-2, 0.5, 2, 0}).set_requires_grad(true);
  Tensor y = nn::Clamp(x, -1.0f, 1.0f);
  EXPECT_FLOAT_EQ(y.at({0}), -1.0f);
  EXPECT_FLOAT_EQ(y.at({1}), 0.5f);
  EXPECT_FLOAT_EQ(y.at({2}), 1.0f);
  Sum(y).Backward();
  EXPECT_FLOAT_EQ(x.grad().at({0}), 0.0f);  // clipped -> zero grad
  EXPECT_FLOAT_EQ(x.grad().at({1}), 1.0f);
}

TEST(GeluTest, KnownValues) {
  Tensor x = Tensor::FromVector(Shape{3}, {-10.0f, 0.0f, 10.0f});
  Tensor y = nn::Gelu(x);
  EXPECT_NEAR(y.at({0}), 0.0f, 1e-3);
  EXPECT_NEAR(y.at({1}), 0.0f, 1e-6);
  EXPECT_NEAR(y.at({2}), 10.0f, 1e-3);
}

TEST(LstmTest, ShapesAndStateEvolution) {
  Rng rng(10);
  LstmCell cell(3, 5, &rng);
  auto state = cell.InitialState(2);
  EXPECT_EQ(state.h.shape(), (Shape{2, 5}));
  Tensor x = Tensor::Ones(Shape{2, 3});
  auto next = cell.Step(x, state);
  EXPECT_EQ(next.h.shape(), (Shape{2, 5}));
  // h must move away from zero given nonzero input.
  float norm = 0.0f;
  for (int64_t i = 0; i < next.h.numel(); ++i) {
    norm += std::fabs(next.h.data()[i]);
  }
  EXPECT_GT(norm, 0.0f);
}

TEST(LstmTest, SequenceOutputShape) {
  Rng rng(11);
  Lstm lstm(4, 6, &rng);
  Tensor y = lstm.Forward(Tensor::Ones(Shape{3, 7, 4}));
  EXPECT_EQ(y.shape(), (Shape{3, 7, 6}));
}

TEST(LstmTest, GradientFlowsToInputWeights) {
  Rng rng(12);
  Lstm lstm(2, 3, &rng);
  Tensor x = Tensor::Randn(Shape{1, 5, 2}, &rng);
  Sum(Square(lstm.Forward(x))).Backward();
  const Tensor g = lstm.cell().w_ih().grad();
  ASSERT_TRUE(g.defined());
  float norm = 0.0f;
  for (int64_t i = 0; i < g.numel(); ++i) norm += std::fabs(g.data()[i]);
  EXPECT_GT(norm, 0.0f);
}

TEST(Conv1dTest, CausalityOutputIgnoresFuture) {
  Rng rng(13);
  Conv1dCausal conv(1, 1, /*kernel=*/3, /*dilation=*/1, /*groups=*/1, &rng);
  Tensor x = Tensor::Zeros(Shape{1, 1, 8});
  Tensor y0 = conv.Forward(x);
  // Perturb a future position; outputs before it must not change.
  Tensor x2 = x.Clone();
  x2.at({0, 0, 5}) = 10.0f;
  Tensor y1 = conv.Forward(x2);
  for (int64_t t = 0; t < 5; ++t) {
    EXPECT_FLOAT_EQ(y0.at({0, 0, t}), y1.at({0, 0, t})) << "t=" << t;
  }
  EXPECT_NE(y0.at({0, 0, 5}), y1.at({0, 0, 5}));
}

TEST(Conv1dTest, ShiftRightExcludesPresent) {
  Rng rng(14);
  Conv1dCausal conv(1, 1, 3, 1, 1, &rng);
  Tensor x = Tensor::Zeros(Shape{1, 1, 8});
  Tensor base = conv.Forward(x, /*shift_right=*/true);
  Tensor x2 = x.Clone();
  x2.at({0, 0, 4}) = 5.0f;
  Tensor pert = conv.Forward(x2, /*shift_right=*/true);
  // With the shift, position 4 must not see its own value.
  EXPECT_FLOAT_EQ(base.at({0, 0, 4}), pert.at({0, 0, 4}));
  EXPECT_NE(base.at({0, 0, 5}), pert.at({0, 0, 5}));
}

TEST(Conv1dTest, DilationReachesFurtherBack) {
  Rng rng(15);
  Conv1dCausal conv(1, 1, /*kernel=*/2, /*dilation=*/3, /*groups=*/1, &rng,
                    /*bias=*/false);
  // Kernel taps: lag 0 and lag 3.
  Tensor w = conv.weight();
  w.data()[0] = 1.0f;  // tap at lag 3
  w.data()[1] = 0.0f;  // tap at lag 0
  Tensor x = Tensor::Zeros(Shape{1, 1, 8});
  x.at({0, 0, 2}) = 1.0f;
  Tensor y = conv.Forward(x);
  EXPECT_FLOAT_EQ(y.at({0, 0, 5}), 1.0f);  // echoed 3 steps later
  EXPECT_FLOAT_EQ(y.at({0, 0, 2}), 0.0f);
}

TEST(Conv1dTest, DepthwiseGroupsKeepChannelsIndependent) {
  Rng rng(16);
  Conv1dCausal conv(2, 2, 3, 1, /*groups=*/2, &rng, /*bias=*/false);
  Tensor x = Tensor::Zeros(Shape{1, 2, 6});
  x.at({0, 0, 2}) = 1.0f;  // only channel 0 carries signal
  Tensor y = conv.Forward(x);
  for (int64_t t = 0; t < 6; ++t) {
    EXPECT_FLOAT_EQ(y.at({0, 1, t}), 0.0f) << "channel crosstalk at t=" << t;
  }
}

TEST(Conv1dTest, GradCheckSmall) {
  Rng rng(17);
  Tensor x = Tensor::Randn(Shape{1, 2, 5}, &rng, true);
  Tensor w = Tensor::Randn(Shape{2, 2, 3}, &rng, true);
  Tensor b = Tensor::Randn(Shape{2}, &rng, true);
  auto f = [&]() {
    return Sum(Square(nn::CausalConv1d(x, w, b, 1, 1, false)));
  };
  Tensor loss = f();
  loss.Backward();
  const float eps = 1e-2f;
  auto check = [&](Tensor& t) {
    const Tensor g = t.grad();
    for (int64_t i = 0; i < t.numel(); ++i) {
      const float orig = t.data()[i];
      t.data()[i] = orig + eps;
      const float up = f().item();
      t.data()[i] = orig - eps;
      const float down = f().item();
      t.data()[i] = orig;
      const float numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(g.data()[i], numeric,
                  2e-2f * std::max(1.0f, std::fabs(numeric)));
    }
  };
  check(x);
  check(w);
  check(b);
}

}  // namespace
}  // namespace causalformer
