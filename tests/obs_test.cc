#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/observability.h"
#include "obs/process_metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "util/rng.h"

// The observability core: histogram bucket math against hand-computed
// boundaries and a sorted-vector quantile oracle, striped-shard merging
// under real thread concurrency (the TSan job runs this suite), exposition
// rendering with label splicing, and the trace span/phase machinery on a
// scripted clock.

namespace causalformer {
namespace obs {
namespace {

// A deterministic clock for trace tests: time moves only when the test
// says so (same shape as the serving tests' ScriptedClock).
class FakeClock {
 public:
  explicit FakeClock(double start = 0) : now_(start) {}
  double Now() const {
    std::lock_guard<std::mutex> lock(mu_);
    return now_;
  }
  void Advance(double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    now_ += seconds;
  }
  Clock clock() {
    return Clock([this] { return Now(); });
  }

 private:
  mutable std::mutex mu_;
  double now_;
};

// ---- Counter / Gauge --------------------------------------------------------

TEST(CounterTest, IncrementAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsMergeExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetWins) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(1.5);
  g.Set(-2.25);
  EXPECT_EQ(g.Value(), -2.25);
}

// ---- Histogram --------------------------------------------------------------

// Easy-to-hand-check layout: min 1, growth 2, 4 buckets.
//   bucket 0: [0, 1]    bucket 1: (1, 2]    bucket 2: (2, 4]
//   bucket 3: (4, +inf)
TEST(HistogramTest, BucketBoundaries) {
  HistogramOptions opt;
  opt.min_value = 1.0;
  opt.growth = 2.0;
  opt.num_buckets = 4;
  Histogram h(opt);
  EXPECT_EQ(h.UpperBound(0), 1.0);
  EXPECT_EQ(h.UpperBound(1), 2.0);
  EXPECT_EQ(h.UpperBound(2), 4.0);
  EXPECT_TRUE(std::isinf(h.UpperBound(3)));

  h.Record(0.0);    // -> 0
  h.Record(0.5);    // -> 0
  h.Record(1.0);    // boundary values land in the lower bucket -> 0
  h.Record(1.001);  // -> 1
  h.Record(2.0);    // -> 1
  h.Record(2.001);  // -> 2
  h.Record(4.0);    // -> 2
  h.Record(4.001);  // -> 3
  h.Record(1e9);    // overflow absorbs into the last bucket -> 3
  h.Record(-3.0);   // negatives clamp to 0 -> 0
  const Histogram::Snapshot snap = h.GetSnapshot();
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 4u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[2], 2u);
  EXPECT_EQ(snap.buckets[3], 2u);
  EXPECT_EQ(snap.count, 10u);
  EXPECT_NEAR(snap.sum, 0.0 + 0.5 + 1.0 + 1.001 + 2.0 + 2.001 + 4.0 +
                            4.001 + 1e9 + 0.0,
              1e-3);
}

TEST(HistogramTest, NanLandsInBucketZeroNotLost) {
  Histogram h;
  h.Record(std::nan(""));
  const Histogram::Snapshot snap = h.GetSnapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.buckets[0], 1u);
}

// Quantile estimates vs a sorted-vector oracle on randomized log-uniform
// samples. With growth factor g, the bucket containing the oracle value
// bounds the estimate, so estimate/oracle must stay within [1/g, g] (plus
// interpolation slack).
TEST(HistogramTest, QuantilesTrackSortedOracle) {
  Rng rng(2025);
  const HistogramOptions opt;  // 1e-6 .. growth sqrt(2) .. 64 buckets
  Histogram h(opt);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) {
    // log-uniform over [1e-5, 10]: six decades, the serving-latency range.
    const double v = std::pow(10.0, -5.0 + 6.0 * rng.Uniform());
    samples.push_back(v);
    h.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  const Histogram::Snapshot snap = h.GetSnapshot();
  ASSERT_EQ(snap.count, samples.size());
  const double slack = opt.growth * 1.05;
  for (const double q : {0.50, 0.90, 0.99}) {
    const size_t rank = static_cast<size_t>(
        std::max(1.0, q * static_cast<double>(samples.size())));
    const double oracle = samples[rank - 1];
    const double estimate = snap.Quantile(q, opt);
    EXPECT_GT(estimate, oracle / slack) << "q=" << q;
    EXPECT_LT(estimate, oracle * slack) << "q=" << q;
  }
  EXPECT_EQ(snap.p50, snap.Quantile(0.50, opt));
  EXPECT_EQ(snap.p90, snap.Quantile(0.90, opt));
  EXPECT_EQ(snap.p99, snap.Quantile(0.99, opt));
}

TEST(HistogramTest, EmptySnapshotIsZeroed) {
  Histogram h;
  const Histogram::Snapshot snap = h.GetSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.sum, 0.0);
  EXPECT_EQ(snap.p50, 0.0);
  EXPECT_EQ(snap.p99, 0.0);
}

// Shard merge: recorders pinned to distinct threads land in distinct
// stripes; the snapshot must still see every sample exactly once.
TEST(HistogramTest, ShardMergeCountsEverySample) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(1e-4 * (t + 1));
      }
    });
  }
  for (auto& t : threads) t.join();
  const Histogram::Snapshot snap = h.GetSnapshot();
  EXPECT_EQ(snap.count, static_cast<uint64_t>(kThreads) * kPerThread);
  double expected_sum = 0;
  for (int t = 0; t < kThreads; ++t) expected_sum += kPerThread * 1e-4 * (t + 1);
  EXPECT_NEAR(snap.sum, expected_sum, expected_sum * 1e-9);
}

// Snapshots taken while recorders are running must be internally sane
// (count equals the bucket total, monotone in time) — this is the
// data-race surface the TSan job watches.
TEST(HistogramTest, SnapshotDuringConcurrentRecords) {
  Histogram h;
  std::atomic<bool> stop{false};
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.Record(0.001);
    });
  }
  uint64_t last_count = 0;
  while (!stop.load()) {
    const Histogram::Snapshot snap = h.GetSnapshot();
    uint64_t bucket_total = 0;
    for (const uint64_t b : snap.buckets) bucket_total += b;
    EXPECT_EQ(snap.count, bucket_total);
    EXPECT_GE(snap.count, last_count);
    last_count = snap.count;
    if (snap.count == static_cast<uint64_t>(kThreads) * kPerThread) break;
    std::this_thread::yield();
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.GetSnapshot().count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

// ---- MetricsRegistry --------------------------------------------------------

TEST(MetricsRegistryTest, HandlesAreStableAndSingletons) {
  MetricsRegistry registry;
  Counter* c1 = registry.GetCounter("requests_total");
  Counter* c2 = registry.GetCounter("requests_total");
  EXPECT_EQ(c1, c2);
  Histogram* h1 = registry.GetHistogram("latency_seconds");
  Histogram* h2 = registry.GetHistogram("latency_seconds");
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(registry.GetGauge("occupancy"), registry.GetGauge("occupancy"));
}

TEST(MetricsRegistryTest, RenderTextExposition) {
  MetricsRegistry registry;
  registry.GetCounter("requests_total")->Increment(3);
  registry.GetGauge("queue_depth")->Set(2.0);
  HistogramOptions opt;
  opt.min_value = 1.0;
  opt.growth = 2.0;
  opt.num_buckets = 3;
  Histogram* h = registry.GetHistogram("latency_seconds", opt);
  h->Record(0.5);
  h->Record(3.0);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("# TYPE requests_total counter\nrequests_total 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge\nqueue_depth 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_seconds histogram\n"),
            std::string::npos);
  // Cumulative buckets: le="1" sees the 0.5 sample, +Inf sees both.
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_sum 3.5\n"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 2\n"), std::string::npos);
}

// A label set embedded in the series name must survive rendering, with the
// histogram's `le` label spliced in after the embedded labels.
TEST(MetricsRegistryTest, RenderTextSplicesEmbeddedLabels) {
  MetricsRegistry registry;
  registry.GetCounter("drift_events_total{stream=\"cli\"}")->Increment();
  HistogramOptions opt;
  opt.min_value = 1.0;
  opt.growth = 2.0;
  opt.num_buckets = 2;
  registry.GetHistogram("append_seconds{stream=\"cli\"}", opt)->Record(0.5);
  const std::string text = registry.RenderText();
  // TYPE lines carry the base name only.
  EXPECT_NE(text.find("# TYPE drift_events_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("drift_events_total{stream=\"cli\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE append_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("append_seconds_bucket{stream=\"cli\",le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("append_seconds_sum{stream=\"cli\"} 0.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("append_seconds_count{stream=\"cli\"} 1\n"),
            std::string::npos);
}

TEST(MetricsRegistryTest, HistogramSummariesMatchSnapshots) {
  MetricsRegistry registry;
  HistogramOptions opt;
  opt.min_value = 1.0;
  opt.growth = 2.0;
  opt.num_buckets = 4;
  Histogram* a = registry.GetHistogram("a_seconds", opt);
  for (int i = 0; i < 100; ++i) a->Record(1.5);
  registry.GetHistogram("b_seconds", opt);  // empty histogram still reports
  const std::vector<HistogramSummary> rows = registry.HistogramSummaries();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "a_seconds");
  EXPECT_EQ(rows[0].count, 100u);
  EXPECT_NEAR(rows[0].sum, 150.0, 1e-9);
  EXPECT_EQ(rows[0].p50, a->GetSnapshot().p50);
  EXPECT_EQ(rows[1].name, "b_seconds");
  EXPECT_EQ(rows[1].count, 0u);
}

// ---- Trace ------------------------------------------------------------------

// The mark-based span API makes the timeline contiguous by construction:
// each span's end is exactly the next span's start.
TEST(TraceTest, SpansAreContiguousOnScriptedClock) {
  FakeClock clock(100.0);
  Trace trace(7, clock.clock(), "decode");
  clock.Advance(0.25);
  trace.StartSpan("enqueue");
  clock.Advance(0.5);
  trace.StartSpan("execute");
  clock.Advance(1.0);
  trace.StartSpan("encode");
  clock.Advance(0.125);
  trace.Finish();

  const std::vector<TraceSpan> spans = trace.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "decode");
  EXPECT_EQ(spans[1].name, "enqueue");
  EXPECT_EQ(spans[2].name, "execute");
  EXPECT_EQ(spans[3].name, "encode");
  EXPECT_EQ(spans[0].start, 100.0);
  for (size_t i = 0; i + 1 < spans.size(); ++i) {
    EXPECT_EQ(spans[i].end, spans[i + 1].start) << "gap after " << spans[i].name;
  }
  EXPECT_EQ(spans[2].end - spans[2].start, 1.0);
  EXPECT_EQ(spans[3].end, 101.875);
  EXPECT_EQ(trace.DurationSeconds(), 1.875);
}

TEST(TraceTest, PhasesAccumulateByName) {
  FakeClock clock;
  Trace trace(1, clock.clock(), "decode");
  trace.AddPhase("forward", 0.5);
  trace.AddPhase("backward", 0.25);
  trace.AddPhase("forward", 0.125);
  const auto phases = trace.phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].first, "forward");
  EXPECT_EQ(phases[0].second, 0.625);
  EXPECT_EQ(phases[1].first, "backward");
  EXPECT_EQ(phases[1].second, 0.25);
}

TEST(TraceTest, LeaderLinkAndToString) {
  FakeClock clock(5.0);
  Trace trace(42, clock.clock(), "decode");
  EXPECT_EQ(trace.leader_id(), 0u);
  trace.SetLeader(17);
  EXPECT_EQ(trace.leader_id(), 17u);
  clock.Advance(0.010);
  trace.Finish();
  trace.AddPhase("forward", 0.004);
  const std::string line = trace.ToString();
  EXPECT_NE(line.find("trace id=42"), std::string::npos);
  EXPECT_NE(line.find("leader=17"), std::string::npos);
  EXPECT_NE(line.find("decode="), std::string::npos);
  EXPECT_NE(line.find("forward="), std::string::npos);
}

TEST(TraceRingTest, BoundedEvictionKeepsNewest) {
  FakeClock clock;
  TraceRing ring(3, /*slow_threshold_seconds=*/0);
  for (uint64_t id = 1; id <= 5; ++id) {
    auto trace = std::make_shared<Trace>(id, clock.clock(), "decode");
    trace->Finish();
    ring.Add(std::move(trace));
  }
  EXPECT_EQ(ring.total_added(), 5u);
  const auto kept = ring.Snapshot();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0]->id(), 3u);
  EXPECT_EQ(kept[2]->id(), 5u);
}

TEST(TraceRingTest, SlowThresholdAdmitsWithoutCrashing) {
  FakeClock clock;
  TraceRing ring(4, /*slow_threshold_seconds=*/0.001);
  auto slow = std::make_shared<Trace>(9, clock.clock(), "decode");
  clock.Advance(1.0);  // over threshold -> the structured warning path runs
  slow->Finish();
  ring.Add(slow);
  ring.Add(nullptr);  // null traces are ignored, not fatal
  EXPECT_EQ(ring.total_added(), 1u);
  EXPECT_EQ(ring.slow_threshold_seconds(), 0.001);
}

// ---- PhaseCollector / ScopedPhaseTimer --------------------------------------

TEST(PhaseCollectorTest, TimerReportsIntoInstalledCollector) {
  FakeClock clock;
  PhaseCollector collector(clock.clock());
  EXPECT_EQ(PhaseCollector::Current(), nullptr);
  {
    ScopedPhaseCollector install(&collector);
    EXPECT_EQ(PhaseCollector::Current(), &collector);
    {
      ScopedPhaseTimer timer("forward");
      clock.Advance(0.25);
    }
    {
      ScopedPhaseTimer timer("forward");
      clock.Advance(0.5);
    }
    {
      ScopedPhaseTimer timer("kernel.matmul");
      clock.Advance(0.125);
    }
  }
  EXPECT_EQ(PhaseCollector::Current(), nullptr);
  const auto& phases = collector.phases();
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].first, "forward");
  EXPECT_EQ(phases[0].second, 0.75);
  EXPECT_EQ(phases[1].first, "kernel.matmul");
  EXPECT_EQ(phases[1].second, 0.125);
}

TEST(PhaseCollectorTest, TimerIsNoOpWithoutCollector) {
  // No collector installed: must not crash, must not record anywhere.
  ScopedPhaseTimer timer("forward");
  SUCCEED();
}

TEST(PhaseCollectorTest, KernelTimersGateOnCollectorFlag) {
  // Kernel-tagged timers are the sampling gate: with collect_kernels off,
  // phase timers still record but kernel timers never read the clock.
  FakeClock clock;
  PhaseCollector collector(clock.clock());
  EXPECT_TRUE(collector.collect_kernels());  // default on
  collector.set_collect_kernels(false);
  {
    ScopedPhaseCollector install(&collector);
    {
      ScopedPhaseTimer timer("forward");
      clock.Advance(0.25);
    }
    {
      ScopedPhaseTimer timer("kernel.matmul", /*kernel=*/true);
      clock.Advance(0.125);
    }
  }
  const auto& phases = collector.phases();
  ASSERT_EQ(phases.size(), 1u);
  EXPECT_EQ(phases[0].first, "forward");
  EXPECT_EQ(phases[0].second, 0.25);

  collector.set_collect_kernels(true);
  {
    ScopedPhaseCollector install(&collector);
    ScopedPhaseTimer timer("kernel.matmul", /*kernel=*/true);
    clock.Advance(0.5);
  }
  ASSERT_EQ(collector.phases().size(), 2u);
  EXPECT_EQ(collector.phases()[1].first, "kernel.matmul");
  EXPECT_EQ(collector.phases()[1].second, 0.5);
}

TEST(PhaseCollectorTest, NestedInstallRestoresPrevious) {
  PhaseCollector outer, inner;
  ScopedPhaseCollector install_outer(&outer);
  {
    ScopedPhaseCollector install_inner(&inner);
    EXPECT_EQ(PhaseCollector::Current(), &inner);
    {
      // Explicit null install: collection off inside an instrumented region.
      ScopedPhaseCollector off(nullptr);
      EXPECT_EQ(PhaseCollector::Current(), nullptr);
    }
    EXPECT_EQ(PhaseCollector::Current(), &inner);
  }
  EXPECT_EQ(PhaseCollector::Current(), &outer);
}

// ---- Observability ----------------------------------------------------------

TEST(ObservabilityTest, TraceIdsAreUniqueAndPositive) {
  Observability obs;
  const uint64_t a = obs.NextTraceId();
  const uint64_t b = obs.NextTraceId();
  EXPECT_GT(a, 0u);
  EXPECT_GT(b, a);
  auto trace = obs.StartTrace("decode");
  ASSERT_NE(trace, nullptr);
  EXPECT_GT(trace->id(), b);
  ASSERT_EQ(trace->spans().size(), 1u);
  EXPECT_EQ(trace->spans()[0].name, "decode");
}

TEST(ObservabilityTest, ScriptedClockDrivesEveryLayer) {
  FakeClock clock(50.0);
  ObservabilityOptions opt;
  opt.clock = clock.clock();
  opt.trace_ring_capacity = 8;
  Observability obs(opt);
  EXPECT_TRUE(obs.clock().is_scripted());
  auto trace = obs.StartTrace("decode");
  clock.Advance(2.0);
  trace->Finish();
  EXPECT_EQ(trace->DurationSeconds(), 2.0);
  obs.traces().Add(trace);
  EXPECT_EQ(obs.traces().Snapshot().size(), 1u);
}

// ---- Chrome-trace export edge cases ----------------------------------------

TEST(TraceExportTest, EmptyRingRendersValidChromeJson) {
  // An untouched ring must still export loadable JSON (the flight
  // recorder and `serve_cli trace --json` ship it verbatim).
  const std::string json = RenderChromeTrace({});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(json.back(), '\n');
}

// ---- Process metrics -------------------------------------------------------

TEST(ProcessMetricsTest, ProcReadersReturnSaneValues) {
  // A live Linux process: resident memory, consumed CPU and open fds are
  // all strictly positive (this binary mapped itself, burned cycles
  // getting here and holds std streams open).
  EXPECT_GT(ProcessMetrics::ReadRssBytes(), 0u);
  EXPECT_GE(ProcessMetrics::ReadCpuSeconds(), 0.0);
  EXPECT_GT(ProcessMetrics::ReadOpenFds(), 0);
}

TEST(ProcessMetricsTest, RegistersAndUpdatesGauges) {
  MetricsRegistry registry;
  ProcessMetrics process(&registry);
  // The constructor's initial Update() populates every series.
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("cf_process_rss_bytes"), std::string::npos);
  EXPECT_NE(text.find("cf_process_cpu_seconds_total"), std::string::npos);
  EXPECT_NE(text.find("cf_process_open_fds"), std::string::npos);
  EXPECT_NE(text.find("cf_process_uptime_seconds"), std::string::npos);
  EXPECT_GT(registry.GetGauge("cf_process_rss_bytes")->Value(), 0.0);

  // Uptime moves with time; RSS tracks a deliberate allocation upward
  // (a vector this size cannot hide in an existing arena).
  const double uptime0 = registry.GetGauge("cf_process_uptime_seconds")->Value();
  std::vector<char> ballast(16 << 20, 'x');
  process.Update();
  EXPECT_GE(registry.GetGauge("cf_process_uptime_seconds")->Value(), uptime0);
  EXPECT_GT(registry.GetGauge("cf_process_open_fds")->Value(), 0.0);
}

}  // namespace
}  // namespace obs
}  // namespace causalformer
