#include <gtest/gtest.h>

#include <cmath>

#include "data/fmri_sim.h"
#include "data/lorenz96.h"
#include "data/sst_sim.h"
#include "data/synthetic.h"
#include "data/timeseries.h"
#include "data/windowing.h"

namespace causalformer {
namespace {

using data::Dataset;

TEST(StandardizeTest, ZeroMeanUnitVariance) {
  Tensor s = Tensor::FromVector(Shape{2, 4}, {1, 2, 3, 4, 10, 20, 30, 40});
  data::StandardizeSeries(s);
  for (int64_t i = 0; i < 2; ++i) {
    double mean = 0.0, var = 0.0;
    for (int64_t t = 0; t < 4; ++t) mean += s.at({i, t});
    mean /= 4;
    for (int64_t t = 0; t < 4; ++t) {
      var += (s.at({i, t}) - mean) * (s.at({i, t}) - mean);
    }
    var /= 4;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-4);
  }
}

TEST(StandardizeTest, ConstantSeriesStaysFinite) {
  Tensor s = Tensor::Full(Shape{1, 5}, 7.0f);
  data::StandardizeSeries(s);
  for (int64_t t = 0; t < 5; ++t) {
    EXPECT_TRUE(std::isfinite(s.at({0, t})));
    EXPECT_NEAR(s.at({0, t}), 0.0f, 1e-6);
  }
}

TEST(MinMaxTest, ScalesToUnitInterval) {
  Tensor s = Tensor::FromVector(Shape{1, 4}, {2, 4, 6, 10});
  data::MinMaxScaleSeries(s);
  EXPECT_FLOAT_EQ(s.at({0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(s.at({0, 3}), 1.0f);
  EXPECT_FLOAT_EQ(s.at({0, 1}), 0.25f);
}

class SyntheticStructureTest
    : public testing::TestWithParam<data::SyntheticStructure> {};

TEST_P(SyntheticStructureTest, GeneratesExpectedShapeAndTruth) {
  Rng rng(42);
  data::SyntheticOptions opt;
  opt.length = 300;
  const Dataset ds = data::GenerateSynthetic(GetParam(), opt, &rng);
  const int expected_n =
      GetParam() == data::SyntheticStructure::kDiamond ? 4 : 3;
  EXPECT_EQ(ds.num_series(), expected_n);
  EXPECT_EQ(ds.length(), 300);
  // Ground truth must contain all self-loops.
  for (int i = 0; i < expected_n; ++i) EXPECT_TRUE(ds.truth.HasEdge(i, i));
  // Ground truth matches the structural skeleton (ignoring delays).
  const CausalGraph skeleton = StructureSkeleton(GetParam());
  EXPECT_EQ(ds.truth.num_edges(), skeleton.num_edges());
  for (const auto& e : skeleton.edges()) {
    EXPECT_TRUE(ds.truth.HasEdge(e.from, e.to))
        << "missing " << e.from << "->" << e.to;
  }
  // Delays within [1, max_lag].
  for (const auto& e : ds.truth.edges()) {
    EXPECT_GE(e.delay, 1);
    EXPECT_LE(e.delay, opt.max_lag);
  }
  // Data is standardised and finite.
  for (int64_t i = 0; i < ds.series.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(ds.series.data()[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStructures, SyntheticStructureTest,
    testing::Values(data::SyntheticStructure::kDiamond,
                    data::SyntheticStructure::kMediator,
                    data::SyntheticStructure::kVStructure,
                    data::SyntheticStructure::kFork),
    [](const auto& info) {
      return data::ToString(info.param) == "v-structure"
                 ? std::string("v_structure")
                 : data::ToString(info.param);
    });

TEST(SyntheticTest, CauseActuallyDrivesEffect) {
  // With strong coupling and weak noise, the cause's lagged values must
  // correlate with the effect far more than the reverse direction.
  Rng rng(7);
  data::SyntheticOptions opt;
  opt.length = 2000;
  opt.noise_std = 0.3;
  opt.max_lag = 1;
  opt.nonlinear = false;
  const Dataset ds =
      data::GenerateSynthetic(data::SyntheticStructure::kFork, opt, &rng);
  auto corr_lag1 = [&](int a, int b) {  // corr(x_a[t-1], x_b[t])
    double num = 0.0, da = 0.0, db = 0.0;
    for (int64_t t = 1; t < ds.length(); ++t) {
      const double xa = ds.series.at({a, t - 1});
      const double xb = ds.series.at({b, t});
      num += xa * xb;
      da += xa * xa;
      db += xb * xb;
    }
    return num / std::sqrt(da * db);
  };
  // Fork: 0 -> 1 and 0 -> 2.
  EXPECT_GT(std::fabs(corr_lag1(0, 1)), 0.3);
  EXPECT_GT(std::fabs(corr_lag1(0, 2)), 0.3);
}

TEST(SyntheticTest, SeedsGiveDistinctRealisations) {
  Rng r1(1), r2(2);
  data::SyntheticOptions opt;
  opt.length = 100;
  const Dataset a =
      data::GenerateSynthetic(data::SyntheticStructure::kDiamond, opt, &r1);
  const Dataset b =
      data::GenerateSynthetic(data::SyntheticStructure::kDiamond, opt, &r2);
  bool any_diff = false;
  for (int64_t i = 0; i < a.series.numel(); ++i) {
    if (a.series.data()[i] != b.series.data()[i]) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Lorenz96Test, ShapeTruthAndChaos) {
  Rng rng(3);
  data::Lorenz96Options opt;
  opt.num_series = 10;
  opt.length = 500;
  const Dataset ds = data::GenerateLorenz96(opt, &rng);
  EXPECT_EQ(ds.num_series(), 10);
  EXPECT_EQ(ds.length(), 500);
  // Each node has exactly 4 parents: i-2, i-1, i+1, self.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(ds.truth.HasEdge((i + 1) % 10, i));
    EXPECT_TRUE(ds.truth.HasEdge((i + 9) % 10, i));
    EXPECT_TRUE(ds.truth.HasEdge((i + 8) % 10, i));
    EXPECT_TRUE(ds.truth.HasEdge(i, i));
    EXPECT_FALSE(ds.truth.HasEdge((i + 2) % 10, i));
  }
  EXPECT_EQ(ds.truth.num_edges(), 40);
  // Standardised output must vary (the attractor is chaotic, not fixed).
  double var = 0.0;
  for (int64_t t = 0; t < ds.length(); ++t) {
    var += ds.series.at({0, t}) * ds.series.at({0, t});
  }
  EXPECT_GT(var / ds.length(), 0.5);
}

TEST(Lorenz96Test, BoundedTrajectories) {
  Rng rng(4);
  data::Lorenz96Options opt;
  opt.length = 300;
  opt.standardize = false;
  const Dataset ds = data::GenerateLorenz96(opt, &rng);
  for (int64_t i = 0; i < ds.series.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(ds.series.data()[i]));
    EXPECT_LT(std::fabs(ds.series.data()[i]), 100.0f);
  }
}

TEST(FmriTest, SubjectShapesAndTruth) {
  Rng rng(5);
  data::FmriOptions opt;
  opt.num_nodes = 8;
  opt.length = 150;
  const Dataset ds = data::GenerateFmriSubject(opt, &rng);
  EXPECT_EQ(ds.num_series(), 8);
  EXPECT_EQ(ds.length(), 150);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ds.truth.HasEdge(i, i));
  // No 2-cycles among non-self edges.
  for (const auto& e : ds.truth.edges()) {
    if (e.from != e.to) {
      EXPECT_FALSE(ds.truth.HasEdge(e.to, e.from) &&
                   ds.truth.HasEdge(e.from, e.to) && e.from > e.to)
          << "2-cycle " << e.from << "<->" << e.to;
    }
  }
}

TEST(FmriTest, HrfKernelIsNormalizedAndPeaked) {
  const auto hrf = data::HrfKernel(6);
  ASSERT_EQ(hrf.size(), 6u);
  double sum = 0.0;
  for (const double v : hrf) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Peak near the beginning (2.5 s sampling, peak ~5 s -> index 1).
  int peak = 0;
  for (size_t i = 1; i < hrf.size(); ++i) {
    if (hrf[i] > hrf[peak]) peak = static_cast<int>(i);
  }
  EXPECT_LE(peak, 2);
}

TEST(FmriTest, BenchmarkHasNetSimSizeMixture) {
  Rng rng(6);
  const auto subjects = data::GenerateFmriBenchmark(&rng, 80, 28);
  ASSERT_EQ(subjects.size(), 28u);
  int count5 = 0, count10 = 0, count15 = 0, count50 = 0;
  for (const auto& s : subjects) {
    if (s.num_series() == 5) ++count5;
    if (s.num_series() == 10) ++count10;
    if (s.num_series() == 15) ++count15;
    if (s.num_series() == 50) ++count50;
  }
  EXPECT_EQ(count5, 15);
  EXPECT_EQ(count10, 8);
  EXPECT_EQ(count15, 4);
  EXPECT_EQ(count50, 1);
}

TEST(SstTest, GridGeometryMatchesPaperRegion) {
  Rng rng(7);
  data::SstOptions opt;  // defaults: 20-70N, 0-80W at 4 degrees
  opt.length = 30;
  const data::SstDataset sst = data::GenerateSst(opt, &rng);
  EXPECT_EQ(sst.grid.rows(), 12);
  EXPECT_EQ(sst.grid.cols(), 20);
  EXPECT_EQ(sst.data.num_series(), 240);
  EXPECT_EQ(sst.data.length(), 30);
  EXPECT_GT(sst.grid.lats.front(), 20.0);
  EXPECT_LT(sst.grid.lats.back(), 70.0);
}

TEST(SstTest, CurrentFieldHasGyreSignature) {
  Rng rng(8);
  data::SstOptions opt;
  opt.length = 10;
  const data::SstDataset sst = data::GenerateSst(opt, &rng);
  // Western mid-basin (Gulf Stream region ~38N, 65W): northward component.
  // Eastern subtropical (Canary region ~30N, 15W): southward component.
  auto v_at = [&](double lat, double lon) {
    int best = 0;
    double bestd = 1e18;
    for (int c = 0; c < sst.grid.num_cells(); ++c) {
      const double d = std::abs(sst.grid.lat_of(c) - lat) +
                       std::abs(sst.grid.lon_of(c) - lon);
      if (d < bestd) {
        bestd = d;
        best = c;
      }
    }
    return sst.velocity[best].second;
  };
  EXPECT_GT(v_at(38.0, -65.0), 0.0);   // Gulf Stream flows north
  EXPECT_LT(v_at(30.0, -15.0), 0.0);   // Canary current flows south
  EXPECT_GT(v_at(62.0, -10.0), 0.0);   // Norway current flows north
  EXPECT_LT(v_at(62.0, -50.0), 0.0);   // Greenland side flows south
}

TEST(SstTest, CurrentGraphEdgesFollowVelocity) {
  Rng rng(9);
  data::SstOptions opt;
  opt.length = 10;
  const data::SstDataset sst = data::GenerateSst(opt, &rng);
  const CausalGraph truth =
      data::CurrentFieldGraph(sst.grid, sst.velocity, 0.05);
  int aligned = 0, total = 0;
  for (const auto& e : truth.edges()) {
    if (e.from == e.to) continue;
    ++total;
    const double dlat = sst.grid.lat_of(e.to) - sst.grid.lat_of(e.from);
    const double v = sst.velocity[e.to].second;
    // Edge direction should match the meridional flow sign when it moves.
    if (dlat != 0.0 && v != 0.0 && (dlat > 0) == (v > 0)) ++aligned;
    if (dlat == 0.0 || v == 0.0) ++aligned;  // zonal edges are neutral
  }
  ASSERT_GT(total, 20);
  EXPECT_GT(static_cast<double>(aligned) / total, 0.8);
}

TEST(WindowingTest, MakeWindowsContents) {
  Tensor s = Tensor::FromVector(Shape{2, 5}, {0, 1, 2, 3, 4, 10, 11, 12, 13, 14});
  Tensor w = data::MakeWindows(s, 3, 1);
  EXPECT_EQ(w.shape(), (Shape{3, 2, 3}));
  EXPECT_FLOAT_EQ(w.at({0, 0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(w.at({1, 0, 0}), 1.0f);
  EXPECT_FLOAT_EQ(w.at({2, 1, 2}), 14.0f);
}

TEST(WindowingTest, StrideSkipsWindows) {
  Tensor s = Tensor::FromVector(Shape{1, 7}, {0, 1, 2, 3, 4, 5, 6});
  Tensor w = data::MakeWindows(s, 3, 2);
  EXPECT_EQ(w.dim(0), 3);  // starts at 0, 2, 4
  EXPECT_FLOAT_EQ(w.at({2, 0, 0}), 4.0f);
}

TEST(WindowingTest, GatherSelectsRows) {
  Tensor s = Tensor::FromVector(Shape{1, 6}, {0, 1, 2, 3, 4, 5});
  Tensor w = data::MakeWindows(s, 2, 1);
  Tensor g = data::GatherWindows(w, {4, 0});
  EXPECT_EQ(g.shape(), (Shape{2, 1, 2}));
  EXPECT_FLOAT_EQ(g.at({0, 0, 0}), 4.0f);
  EXPECT_FLOAT_EQ(g.at({1, 0, 0}), 0.0f);
}

TEST(WindowingTest, StrideLargerThanWindowSkipsSamples) {
  // stride > window: windows start at 0 and 5, never overlapping and
  // leaving a gap of (stride - window) samples between them.
  Tensor s = Tensor::FromVector(Shape{1, 8}, {0, 1, 2, 3, 4, 5, 6, 7});
  Tensor w = data::MakeWindows(s, 3, 5);
  ASSERT_EQ(w.shape(), (Shape{2, 1, 3}));
  EXPECT_FLOAT_EQ(w.at({0, 0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(w.at({0, 0, 2}), 2.0f);
  EXPECT_FLOAT_EQ(w.at({1, 0, 0}), 5.0f);
  EXPECT_FLOAT_EQ(w.at({1, 0, 2}), 7.0f);
}

TEST(WindowingTest, WindowEqualToSeriesLengthYieldsOneWindow) {
  Tensor s = Tensor::FromVector(Shape{2, 4}, {0, 1, 2, 3, 10, 11, 12, 13});
  for (const int64_t stride : {1, 2, 7}) {
    Tensor w = data::MakeWindows(s, 4, stride);
    ASSERT_EQ(w.shape(), (Shape{1, 2, 4})) << "stride " << stride;
    EXPECT_FLOAT_EQ(w.at({0, 0, 0}), 0.0f);
    EXPECT_FLOAT_EQ(w.at({0, 1, 3}), 13.0f);
  }
}

TEST(WindowingTest, StrideNotDividingRangeDropsTrailingRemainder) {
  // L=9, window=3: starts at 0, 4, 8 would need samples past the end for
  // 8; covered starts are {0, 4} — the trailing remainder is dropped, never
  // padded.
  Tensor s = Tensor::FromVector(Shape{1, 9}, {0, 1, 2, 3, 4, 5, 6, 7, 8});
  Tensor w = data::MakeWindows(s, 3, 4);
  ASSERT_EQ(w.dim(0), 2);
  EXPECT_FLOAT_EQ(w.at({0, 0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(w.at({1, 0, 0}), 4.0f);
  EXPECT_FLOAT_EQ(w.at({1, 0, 2}), 6.0f);
}

TEST(WindowingTest, GatherRepeatedIndicesDuplicatesRows) {
  // The serving layer's window pools gather with repetition; every copy
  // must be an independent full row.
  Tensor s = Tensor::FromVector(Shape{1, 6}, {0, 1, 2, 3, 4, 5});
  Tensor w = data::MakeWindows(s, 2, 1);
  Tensor g = data::GatherWindows(w, {3, 3, 0, 3});
  ASSERT_EQ(g.shape(), (Shape{4, 1, 2}));
  EXPECT_FLOAT_EQ(g.at({0, 0, 0}), 3.0f);
  EXPECT_FLOAT_EQ(g.at({1, 0, 0}), 3.0f);
  EXPECT_FLOAT_EQ(g.at({1, 0, 1}), 4.0f);
  EXPECT_FLOAT_EQ(g.at({2, 0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(g.at({3, 0, 0}), 3.0f);
}

TEST(WindowingTest, GatherEmptyIndexListYieldsEmptyBatch) {
  Tensor s = Tensor::FromVector(Shape{1, 4}, {0, 1, 2, 3});
  Tensor w = data::MakeWindows(s, 2, 1);
  Tensor g = data::GatherWindows(w, {});
  EXPECT_EQ(g.shape(), (Shape{0, 1, 2}));
}

TEST(WindowingTest, BatchesCoverAllIndices) {
  Rng rng(10);
  const auto batches = data::MakeBatches(10, 3, &rng);
  ASSERT_EQ(batches.size(), 4u);
  std::vector<bool> seen(10, false);
  for (const auto& b : batches) {
    for (const int64_t i : b) seen[i] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(WindowingTest, TrainValSplitIsDisjointAndOrdered) {
  std::vector<int64_t> train, val;
  data::SplitTrainVal(100, 0.2, &train, &val);
  EXPECT_EQ(train.size(), 80u);
  EXPECT_EQ(val.size(), 20u);
  EXPECT_EQ(val.front(), 80);
}

}  // namespace
}  // namespace causalformer
