#include <gtest/gtest.h>

#include <cmath>

#include "core/causal_attention.h"
#include "core/causal_conv.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace causalformer {
namespace {

using core::AttentionCombine;
using core::MultiKernelCausalConv;
using core::ShiftRightDiagonal;

TEST(CausalConvTest, OutputShape) {
  Rng rng(1);
  Tensor x = Tensor::Randn(Shape{2, 3, 5}, &rng);
  Tensor k = Tensor::Randn(Shape{3, 3, 5}, &rng);
  Tensor y = MultiKernelCausalConv(x, k);
  EXPECT_EQ(y.shape(), (Shape{2, 3, 3, 5}));
}

TEST(CausalConvTest, Eq3HandComputedValues) {
  // Single series, T=3, kernel [k0, k1, k2] (tap 2 = lag 0).
  Tensor x = Tensor::FromVector(Shape{1, 1, 3}, {1.0f, 2.0f, 3.0f});
  Tensor k = Tensor::FromVector(Shape{1, 1, 3}, {0.5f, 1.0f, 2.0f});
  Tensor y = MultiKernelCausalConv(x, k);
  // t=0: k[2]*x0 / 1 = 2
  // t=1: (k[1]*x0 + k[2]*x1) / 2 = (1 + 4)/2 = 2.5
  // t=2: (k[0]*x0 + k[1]*x1 + k[2]*x2) / 3 = (0.5 + 2 + 6)/3 = 8.5/3
  EXPECT_NEAR(y.at({0, 0, 0, 0}), 2.0f, 1e-5);
  EXPECT_NEAR(y.at({0, 0, 0, 1}), 2.5f, 1e-5);
  EXPECT_NEAR(y.at({0, 0, 0, 2}), 8.5f / 3.0f, 1e-5);
}

TEST(CausalConvTest, TemporalPriorityHoldsEverywhere) {
  // Perturbing x at time t must leave conv outputs at times < t unchanged.
  Rng rng(2);
  const int64_t n = 3, steps = 6;
  Tensor k = Tensor::Randn(Shape{n, n, steps}, &rng);
  Tensor x = Tensor::Randn(Shape{1, n, steps}, &rng);
  Tensor base = MultiKernelCausalConv(x, k);
  for (int64_t tp = 0; tp < steps; ++tp) {
    Tensor x2 = x.Clone();
    x2.at({0, 1, tp}) += 7.0f;
    Tensor pert = MultiKernelCausalConv(x2, k);
    for (int64_t i = 0; i < n; ++i) {
      for (int64_t j = 0; j < n; ++j) {
        for (int64_t t = 0; t < tp; ++t) {
          EXPECT_FLOAT_EQ(base.at({0, i, j, t}), pert.at({0, i, j, t}))
              << "future leak: perturb t=" << tp << " changed t=" << t;
        }
      }
    }
  }
}

TEST(CausalConvTest, PerPairKernelsAreIndependent) {
  // Changing kernel (i=0, j=1) must only affect channel (0, 1).
  Rng rng(3);
  Tensor x = Tensor::Randn(Shape{1, 2, 4}, &rng);
  Tensor k = Tensor::Randn(Shape{2, 2, 4}, &rng);
  Tensor base = MultiKernelCausalConv(x, k);
  Tensor k2 = k.Clone();
  k2.at({0, 1, 3}) += 5.0f;
  Tensor pert = MultiKernelCausalConv(x, k2);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t j = 0; j < 2; ++j) {
      for (int64_t t = 0; t < 4; ++t) {
        if (i == 0 && j == 1) continue;
        EXPECT_FLOAT_EQ(base.at({0, i, j, t}), pert.at({0, i, j, t}));
      }
    }
  }
  EXPECT_NE(base.at({0, 0, 1, 0}), pert.at({0, 0, 1, 0}));
}

TEST(CausalConvTest, SharedKernelBroadcastsAcrossTargets) {
  Rng rng(4);
  Tensor x = Tensor::Randn(Shape{1, 2, 4}, &rng);
  Tensor k = Tensor::Randn(Shape{2, 1, 4}, &rng);
  Tensor y = MultiKernelCausalConv(x, k, /*shared_kernel=*/true);
  for (int64_t t = 0; t < 4; ++t) {
    EXPECT_FLOAT_EQ(y.at({0, 0, 0, t}), y.at({0, 0, 1, t}));
    EXPECT_FLOAT_EQ(y.at({0, 1, 0, t}), y.at({0, 1, 1, t}));
  }
}

TEST(CausalConvTest, GradCheck) {
  Rng rng(5);
  Tensor x = Tensor::Randn(Shape{2, 2, 4}, &rng, true);
  Tensor k = Tensor::Randn(Shape{2, 2, 4}, &rng, true);
  auto f = [&]() { return Sum(Square(MultiKernelCausalConv(x, k))); };
  f().Backward();
  const float eps = 1e-2f;
  for (Tensor* t : {&x, &k}) {
    const Tensor g = t->grad();
    ASSERT_TRUE(g.defined());
    for (int64_t i = 0; i < t->numel(); ++i) {
      const float orig = t->data()[i];
      t->data()[i] = orig + eps;
      const float up = f().item();
      t->data()[i] = orig - eps;
      const float down = f().item();
      t->data()[i] = orig;
      const float numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(g.data()[i], numeric,
                  3e-2f * std::max(1.0f, std::fabs(numeric)));
    }
  }
}

TEST(ShiftRightDiagonalTest, ShiftsOnlyDiagonalChannels) {
  Tensor conv = Tensor::Zeros(Shape{1, 2, 2, 3});
  // Fill with distinct values.
  for (int64_t i = 0; i < conv.numel(); ++i) {
    conv.data()[i] = static_cast<float>(i + 1);
  }
  Tensor out = ShiftRightDiagonal(conv);
  // Diagonal (i == j): first slot zero, rest shifted.
  for (int64_t i = 0; i < 2; ++i) {
    EXPECT_FLOAT_EQ(out.at({0, i, i, 0}), 0.0f);
    EXPECT_FLOAT_EQ(out.at({0, i, i, 1}), conv.at({0, i, i, 0}));
    EXPECT_FLOAT_EQ(out.at({0, i, i, 2}), conv.at({0, i, i, 1}));
  }
  // Off-diagonal untouched.
  for (int64_t t = 0; t < 3; ++t) {
    EXPECT_FLOAT_EQ(out.at({0, 0, 1, t}), conv.at({0, 0, 1, t}));
    EXPECT_FLOAT_EQ(out.at({0, 1, 0, t}), conv.at({0, 1, 0, t}));
  }
}

TEST(ShiftRightDiagonalTest, GradCheck) {
  Rng rng(6);
  Tensor x = Tensor::Randn(Shape{1, 2, 2, 3}, &rng, true);
  Tensor w = Tensor::Randn(Shape{1, 2, 2, 3}, &rng);
  auto f = [&]() { return Sum(Mul(ShiftRightDiagonal(x), w)); };
  f().Backward();
  const Tensor g = x.grad();
  const float eps = 1e-2f;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const float up = f().item();
    x.data()[i] = orig - eps;
    const float down = f().item();
    x.data()[i] = orig;
    EXPECT_NEAR(g.data()[i], (up - down) / (2 * eps), 2e-2f);
  }
}

TEST(AttentionCombineTest, HandComputedValues) {
  // out[b,i,t] = sum_j A[b,i,j] * V[b,j,i,t].
  Tensor a = Tensor::FromVector(Shape{1, 2, 2}, {0.25f, 0.75f, 0.5f, 0.5f});
  Tensor v = Tensor::Zeros(Shape{1, 2, 2, 2});
  v.at({0, 0, 0, 0}) = 1.0f;  // source 0 -> target 0
  v.at({0, 1, 0, 0}) = 3.0f;  // source 1 -> target 0
  v.at({0, 0, 1, 1}) = 2.0f;  // source 0 -> target 1
  Tensor out = AttentionCombine(a, v);
  // out[0,0,0] = A00*V[0,0,0] + A01*V[1,0,0] = 0.25*1 + 0.75*3 = 2.5
  EXPECT_FLOAT_EQ(out.at({0, 0, 0}), 2.5f);
  // out[0,1,1] = A10*V[0,1,1] + A11*V[1,1,1] = 0.5*2 + 0 = 1.0
  EXPECT_FLOAT_EQ(out.at({0, 1, 1}), 1.0f);
}

TEST(AttentionCombineTest, GradCheck) {
  Rng rng(7);
  Tensor a = Tensor::Randn(Shape{2, 2, 2}, &rng, true);
  Tensor v = Tensor::Randn(Shape{2, 2, 2, 3}, &rng, true);
  auto f = [&]() { return Sum(Square(AttentionCombine(a, v))); };
  f().Backward();
  const float eps = 1e-2f;
  for (Tensor* t : {&a, &v}) {
    const Tensor g = t->grad();
    for (int64_t i = 0; i < t->numel(); ++i) {
      const float orig = t->data()[i];
      t->data()[i] = orig + eps;
      const float up = f().item();
      t->data()[i] = orig - eps;
      const float down = f().item();
      t->data()[i] = orig;
      const float numeric = (up - down) / (2 * eps);
      EXPECT_NEAR(g.data()[i], numeric,
                  3e-2f * std::max(1.0f, std::fabs(numeric)));
    }
  }
}

TEST(AttentionCombineTest, UniformAttentionAveragesSources) {
  Tensor a = Tensor::Full(Shape{1, 2, 2}, 0.5f);
  Tensor v = Tensor::Ones(Shape{1, 2, 2, 4});
  Tensor out = AttentionCombine(a, v);
  for (int64_t i = 0; i < 2; ++i) {
    for (int64_t t = 0; t < 4; ++t) {
      EXPECT_FLOAT_EQ(out.at({0, i, t}), 1.0f);
    }
  }
}

// Temporal-priority property sweep across (N, T) grid.
class ConvPriorityTest
    : public testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ConvPriorityTest, NoFutureLeak) {
  const auto [n, steps] = GetParam();
  Rng rng(100 + n * 10 + steps);
  Tensor x = Tensor::Randn(Shape{1, n, steps}, &rng);
  Tensor k = Tensor::Randn(Shape{n, n, steps}, &rng);
  Tensor base = ShiftRightDiagonal(MultiKernelCausalConv(x, k));
  const int64_t tp = steps / 2;
  Tensor x2 = x.Clone();
  for (int64_t i = 0; i < n; ++i) x2.at({0, i, tp}) += 3.0f;
  Tensor pert = ShiftRightDiagonal(MultiKernelCausalConv(x2, k));
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      for (int64_t t = 0; t < tp; ++t) {
        EXPECT_FLOAT_EQ(base.at({0, i, j, t}), pert.at({0, i, j, t}));
      }
      // Self channel additionally hides the present (shift): value at tp
      // itself must be unchanged on the diagonal.
      EXPECT_FLOAT_EQ(base.at({0, i, i, tp}), pert.at({0, i, i, tp}));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, ConvPriorityTest,
                         testing::Combine(testing::Values(2, 3, 5),
                                          testing::Values(4, 8, 12)));

}  // namespace
}  // namespace causalformer
