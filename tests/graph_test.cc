#include <gtest/gtest.h>

#include "graph/causal_graph.h"
#include "graph/score_matrix.h"

namespace causalformer {
namespace {

TEST(CausalGraphTest, AddFindRemove) {
  CausalGraph g(3);
  g.AddEdge(0, 1, 2, 0.9);
  g.AddEdge(1, 1, 1);  // self-loop allowed
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  auto e = g.FindEdge(0, 1);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->delay, 2);
  EXPECT_DOUBLE_EQ(e->score, 0.9);
  g.RemoveEdge(0, 1);
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(CausalGraphTest, AddEdgeReplacesExisting) {
  CausalGraph g(2);
  g.AddEdge(0, 1, 1, 0.1);
  g.AddEdge(0, 1, 5, 0.7);
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_EQ(g.FindEdge(0, 1)->delay, 5);
}

TEST(CausalGraphTest, RemoveKeepsIndexConsistent) {
  CausalGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.RemoveEdge(0, 1);  // swap-removal moves the last edge
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_EQ(g.FindEdge(2, 0)->from, 2);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(CausalGraphTest, AdjacencyRoundTrip) {
  CausalGraph g(3);
  g.AddEdge(0, 2);
  g.AddEdge(2, 2);
  const auto adj = g.Adjacency();
  EXPECT_TRUE(adj[0][2]);
  EXPECT_TRUE(adj[2][2]);
  EXPECT_FALSE(adj[1][0]);
  CausalGraph g2 = CausalGraph::FromAdjacency(adj);
  EXPECT_TRUE(g2.HasEdge(0, 2));
  EXPECT_TRUE(g2.HasEdge(2, 2));
  EXPECT_EQ(g2.num_edges(), 2);
}

TEST(CausalGraphTest, DotContainsEdgesAndDelays) {
  CausalGraph g(2);
  g.AddEdge(0, 1, 3);
  const std::string dot = g.ToDot({"A", "B"});
  EXPECT_NE(dot.find("\"A\" -> \"B\""), std::string::npos);
  EXPECT_NE(dot.find("d=3"), std::string::npos);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(CausalGraphTest, ToStringIsCompact) {
  CausalGraph g(2);
  g.AddEdge(1, 0, 2);
  EXPECT_EQ(g.ToString(), "S1->S0(d=2)");
}

TEST(ScoreMatrixTest, SetGetAddIncoming) {
  ScoreMatrix m(3);
  m.set(0, 1, 0.5);
  m.add(0, 1, 0.25);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.75);
  m.set(2, 1, 0.9);
  const auto incoming = m.IncomingScores(1);
  ASSERT_EQ(incoming.size(), 3u);
  EXPECT_DOUBLE_EQ(incoming[0], 0.75);
  EXPECT_DOUBLE_EQ(incoming[2], 0.9);
}

TEST(ScoreMatrixTest, NormalizeMinMax) {
  ScoreMatrix m(2);
  m.set(0, 0, 2.0);
  m.set(0, 1, 4.0);
  m.set(1, 0, 6.0);
  m.set(1, 1, 10.0);
  m.NormalizeMinMax();
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.25);
}

TEST(ScoreMatrixTest, NormalizeConstantMatrixIsNoop) {
  ScoreMatrix m(2);
  m.set(0, 0, 3.0);
  m.set(0, 1, 3.0);
  m.set(1, 0, 3.0);
  m.set(1, 1, 3.0);
  m.NormalizeMinMax();
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
}

TEST(GraphFromScoresTest, SelectsTopClusterPerTarget) {
  // Target 0: strong cause 2; target 1: strong causes 0 and 1.
  ScoreMatrix m(3);
  m.set(0, 0, 0.05);
  m.set(1, 0, 0.1);
  m.set(2, 0, 0.9);
  m.set(0, 1, 0.8);
  m.set(1, 1, 0.85);
  m.set(2, 1, 0.05);
  m.set(0, 2, 0.0);
  m.set(1, 2, 0.0);
  m.set(2, 2, 0.95);
  const CausalGraph g = GraphFromScores(m, ClusterSelectOptions{2, 1});
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(0, 0));
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 1));
  EXPECT_FALSE(g.HasEdge(2, 1));
  EXPECT_TRUE(g.HasEdge(2, 2));
}

TEST(GraphFromScoresTest, UsesProvidedDelays) {
  ScoreMatrix m(2);
  m.set(0, 1, 0.9);
  m.set(1, 1, 0.05);
  m.set(0, 0, 0.9);
  m.set(1, 0, 0.0);
  std::vector<std::vector<int>> delays = {{4, 7}, {1, 1}};
  const CausalGraph g = GraphFromScores(m, ClusterSelectOptions{2, 1}, &delays);
  ASSERT_TRUE(g.HasEdge(0, 1));
  EXPECT_EQ(g.FindEdge(0, 1)->delay, 7);
  ASSERT_TRUE(g.HasEdge(0, 0));
  EXPECT_EQ(g.FindEdge(0, 0)->delay, 4);
}

TEST(GraphFromThresholdTest, KeepsOnlyAboveThreshold) {
  ScoreMatrix m(2);
  m.set(0, 1, 0.6);
  m.set(1, 0, 0.4);
  const CausalGraph g = GraphFromThreshold(m, 0.5);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
}

}  // namespace
}  // namespace causalformer
