#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/detector.h"
#include "serve/client.h"
#include "serve/inference_engine.h"
#include "serve/model_registry.h"
#include "serve/score_cache.h"
#include "serve/server.h"
#include "serve_test_util.h"
#include "stream/drift.h"
#include "stream/ring_series.h"
#include "stream/window_scheduler.h"
#include "tensor/tensor.h"
#include "util/thread_pool.h"

namespace causalformer {
namespace stream {
namespace {

core::ModelOptions TinyModelOptions(int64_t num_series = 3,
                                    int64_t window = 8) {
  core::ModelOptions opt;
  opt.num_series = num_series;
  opt.window = window;
  opt.d_model = 16;
  opt.d_qk = 16;
  opt.heads = 2;
  opt.d_ffn = 16;
  return opt;
}

std::unique_ptr<core::CausalityTransformer> TinyModel(uint64_t seed = 7) {
  Rng rng(seed);
  return std::make_unique<core::CausalityTransformer>(TinyModelOptions(), &rng);
}

Tensor RandomSeries(int64_t n, int64_t length, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Randn(Shape{n, length}, &rng);
}

// Columns [start, end) of an [N, L] series as an [N, end-start] tensor.
Tensor Columns(const Tensor& series, int64_t start, int64_t end) {
  return Slice(series, 1, start, end).Detach();
}

// A DetectionResult with the given uniform score and explicit edges.
core::DetectionResult MakeResult(int n, double score,
                                 const std::vector<CausalEdge>& edges) {
  core::DetectionResult result(n);
  for (int from = 0; from < n; ++from) {
    for (int to = 0; to < n; ++to) result.scores.set(from, to, score);
  }
  for (const auto& edge : edges) {
    result.graph.AddEdge(edge.from, edge.to, edge.delay, edge.score);
  }
  return result;
}

// ---- RingSeries ------------------------------------------------------------

TEST(RingSeriesTest, AppendAndWindowRoundTrip) {
  RingSeries ring(2, 8);
  ASSERT_TRUE(
      ring.Append(Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 10, 20, 30}))
          .ok());
  EXPECT_EQ(ring.total_appended(), 3);
  EXPECT_EQ(ring.size(), 3);
  const auto window = ring.Window(3, 2);
  ASSERT_TRUE(window.ok());
  ASSERT_EQ(window->shape(), (Shape{1, 2, 2}));
  // Window [1, 3): columns {2, 3} and {20, 30}, series-major.
  EXPECT_EQ(window->data()[0], 2.f);
  EXPECT_EQ(window->data()[1], 3.f);
  EXPECT_EQ(window->data()[2], 20.f);
  EXPECT_EQ(window->data()[3], 30.f);
}

TEST(RingSeriesTest, WrapAroundKeepsNewestSamples) {
  RingSeries ring(1, 4);
  for (int64_t t = 0; t < 10; ++t) {
    ASSERT_TRUE(
        ring.Append(Tensor::FromVector(Shape{1, 1}, {static_cast<float>(t)}))
            .ok());
  }
  EXPECT_EQ(ring.total_appended(), 10);
  EXPECT_EQ(ring.size(), 4);
  EXPECT_EQ(ring.oldest(), 6);
  const auto window = ring.Window(10, 4);
  ASSERT_TRUE(window.ok());
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_EQ(window->data()[j], static_cast<float>(6 + j));
  }
  // The overwritten range is gone, loudly.
  EXPECT_FALSE(ring.Window(9, 4).ok());
  // A future range too.
  EXPECT_FALSE(ring.Window(11, 2).ok());
}

TEST(RingSeriesTest, LatestReturnsSeriesMajorTail) {
  RingSeries ring(2, 8);
  ASSERT_TRUE(
      ring.Append(Tensor::FromVector(Shape{2, 4}, {1, 2, 3, 4, 5, 6, 7, 8}))
          .ok());
  const auto latest = ring.Latest(2);
  ASSERT_TRUE(latest.ok());
  ASSERT_EQ(latest->shape(), (Shape{2, 2}));
  EXPECT_EQ(latest->data()[0], 3.f);
  EXPECT_EQ(latest->data()[1], 4.f);
  EXPECT_EQ(latest->data()[2], 7.f);
  EXPECT_EQ(latest->data()[3], 8.f);
}

TEST(RingSeriesTest, RejectsGeometryMismatch) {
  RingSeries ring(3, 8);
  EXPECT_FALSE(ring.Append(Tensor::Zeros(Shape{2, 4})).ok());
  EXPECT_FALSE(ring.Append(Tensor::Zeros(Shape{3})).ok());
  EXPECT_FALSE(ring.Append(Tensor::Zeros(Shape{3, 2, 2})).ok());
}

// ---- RollingWindowHasher ---------------------------------------------------

TEST(RollingHashTest, MatchesHashWindowsOfMaterialisedTensor) {
  // The identity the whole streaming cache story rests on: the incremental
  // hash of any retained window equals HashWindows of the tensor the ring
  // materialises for it — including after the ring wraps.
  const Tensor series = RandomSeries(3, 64, 11);
  RingSeries ring(3, 24);
  RollingWindowHasher hasher(3, 24);
  int64_t checked = 0;
  for (int64_t t = 0; t < 64; t += 5) {
    const int64_t k = std::min<int64_t>(5, 64 - t);
    const Tensor chunk = Columns(series, t, t + k);
    ASSERT_TRUE(ring.Append(chunk).ok());
    ASSERT_TRUE(hasher.Append(chunk).ok());
    for (const int64_t width : {1, 7, 8, 24}) {
      const int64_t end = ring.total_appended();
      if (end - width < ring.oldest()) continue;
      const auto tensor = ring.Window(end, width);
      const auto rolled = hasher.Window(end, width);
      ASSERT_TRUE(tensor.ok() && rolled.ok());
      const serve::WindowHash direct = serve::HashWindows(*tensor);
      EXPECT_EQ(rolled->lo, direct.lo);
      EXPECT_EQ(rolled->hi, direct.hi);
      ++checked;
    }
  }
  EXPECT_GT(checked, 20);
}

TEST(RollingHashTest, DistinctContentAndShapeHashDifferently) {
  const Tensor a = RandomSeries(3, 16, 1);
  Tensor b = a.Clone();
  b.data()[17] += 1e-3f;
  const serve::WindowHash ha = serve::HashWindows(
      Tensor::FromVector(Shape{1, 3, 16}, std::vector<float>(
          a.data(), a.data() + 48)));
  const serve::WindowHash hb = serve::HashWindows(
      Tensor::FromVector(Shape{1, 3, 16}, std::vector<float>(
          b.data(), b.data() + 48)));
  EXPECT_FALSE(ha == hb);
  // Same bytes, different [N, T] split.
  const serve::WindowHash hc = serve::HashWindows(
      Tensor::FromVector(Shape{1, 16, 3}, std::vector<float>(
          a.data(), a.data() + 48)));
  EXPECT_FALSE(ha == hc);
}

TEST(RollingHashTest, WindowOrderIsSignificant) {
  // Swapping two time-step columns must change the hash (the digest fold is
  // order-sensitive).
  std::vector<float> data = {1, 2, 3, 4, 5, 6};  // [1, 2, 3]: columns per row
  const serve::WindowHash ha =
      serve::HashWindows(Tensor::FromVector(Shape{1, 2, 3}, data));
  std::vector<float> swapped = {2, 1, 3, 5, 4, 6};  // columns 0 and 1 swapped
  const serve::WindowHash hb =
      serve::HashWindows(Tensor::FromVector(Shape{1, 2, 3}, swapped));
  EXPECT_FALSE(ha == hb);
}

// ---- Drift -----------------------------------------------------------------

TEST(DriftTest, CountsEdgeFlipsAndScoreMovement) {
  const auto prev = MakeResult(3, 1.0, {{0, 1, 2, 1.0}, {1, 2, 1, 1.0}});
  const auto next = MakeResult(3, 1.5, {{0, 1, 3, 1.0}, {2, 0, 1, 1.0}});
  const DriftReport report = CompareResults(prev, next, {});
  EXPECT_EQ(report.edges_kept, 1);     // 0->1 survives (delay moved)
  EXPECT_EQ(report.edges_added, 1);    // 2->0
  EXPECT_EQ(report.edges_removed, 1);  // 1->2
  EXPECT_EQ(report.delay_changes, 1);  // 0->1: 2 -> 3
  EXPECT_DOUBLE_EQ(report.jaccard, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(report.mean_abs_score_delta, 0.5);
  EXPECT_DOUBLE_EQ(report.max_abs_score_delta, 0.5);
  ASSERT_EQ(report.added.size(), 1u);
  EXPECT_EQ(report.added[0].from, 2);
  ASSERT_EQ(report.removed.size(), 1u);
  EXPECT_EQ(report.removed[0].to, 2);
  EXPECT_TRUE(report.drifted);  // mean Δ (0.5) / peak (1.0) > 0.25
}

TEST(DriftTest, IdenticalResultsDoNotDrift) {
  const auto result = MakeResult(3, 0.7, {{0, 1, 2, 1.0}});
  const DriftReport report = CompareResults(result, result, {});
  EXPECT_FALSE(report.drifted);
  EXPECT_EQ(report.edges_kept, 1);
  EXPECT_DOUBLE_EQ(report.jaccard, 1.0);
  EXPECT_DOUBLE_EQ(report.mean_abs_score_delta, 0.0);
}

TEST(DriftTest, EmptyGraphsAreStable) {
  const auto result = MakeResult(2, 0.0, {});
  const DriftReport report = CompareResults(result, result, {});
  EXPECT_DOUBLE_EQ(report.jaccard, 1.0);
  EXPECT_FALSE(report.drifted);
}

TEST(DriftTest, TrackerDebouncesRegimeChange) {
  DriftOptions options;
  options.stability_window = 3;
  DriftTracker tracker(options);
  const auto stable = std::make_shared<const core::DetectionResult>(
      MakeResult(2, 1.0, {{0, 1, 1, 1.0}}));
  const auto flipped = std::make_shared<const core::DetectionResult>(
      MakeResult(2, 1.0, {{1, 0, 1, 1.0}}));

  EXPECT_FALSE(tracker.Observe(stable).has_value());  // first window
  auto report = tracker.Observe(stable);
  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->drifted);
  EXPECT_EQ(report->consecutive_drifts, 0);

  // Alternate stable/flipped: every pair flips the whole edge set.
  int regime_at = -1;
  for (int i = 0; i < 4; ++i) {
    report = tracker.Observe(i % 2 == 0 ? flipped : stable);
    ASSERT_TRUE(report.has_value());
    EXPECT_TRUE(report->drifted);
    EXPECT_EQ(report->consecutive_drifts, i + 1);
    if (report->regime_change && regime_at < 0) regime_at = i + 1;
  }
  EXPECT_EQ(regime_at, 3);  // debounced until stability_window pairs

  // A calm window (identical to the last observed one) resets the counter.
  report = tracker.Observe(stable);
  ASSERT_TRUE(report.has_value());
  EXPECT_FALSE(report->drifted);
  EXPECT_EQ(report->consecutive_drifts, 0);
  EXPECT_FALSE(report->regime_change);
}

// ---- WindowScheduler -------------------------------------------------------

class SchedulerTest : public ::testing::Test {
 protected:
  SchedulerTest() {
    EXPECT_TRUE(registry_.Register("m", TinyModel()).ok());
  }

  StreamConfig Config(int64_t stride = 2) {
    StreamConfig config;
    config.model = "m";
    config.stride = stride;
    return config;
  }

  serve::ModelRegistry& registry() { return registry_; }

 private:
  serve::ModelRegistry registry_;
};

TEST_F(SchedulerTest, OpenValidatesConfig) {
  serve::InferenceEngine engine(&registry());
  WindowScheduler scheduler(&engine);

  EXPECT_EQ(scheduler.Open("", Config()).code(),
            StatusCode::kInvalidArgument);
  StreamConfig unknown = Config();
  unknown.model = "ghost";
  EXPECT_EQ(scheduler.Open("s", unknown).code(), StatusCode::kNotFound);
  StreamConfig bad_window = Config();
  bad_window.window = 5;  // model window is 8
  EXPECT_EQ(scheduler.Open("s", bad_window).code(),
            StatusCode::kInvalidArgument);
  StreamConfig bad_history = Config();
  bad_history.history = 8;  // < window + stride
  EXPECT_EQ(scheduler.Open("s", bad_history).code(),
            StatusCode::kInvalidArgument);

  // Hostile-config ceilings (a StreamOpen frame can carry any value): one
  // small frame must not be able to provoke a giant allocation.
  StreamConfig huge_history = Config();
  huge_history.history = kMaxStreamHistory + 1;
  EXPECT_EQ(scheduler.Open("s", huge_history).code(),
            StatusCode::kInvalidArgument);
  StreamConfig huge_stride = Config();
  huge_stride.stride = kMaxStreamStride + 1;
  EXPECT_EQ(scheduler.Open("s", huge_stride).code(),
            StatusCode::kInvalidArgument);
  StreamConfig huge_reports = Config();
  huge_reports.max_reports = kMaxStreamReports + 1;
  EXPECT_EQ(scheduler.Open("s", huge_reports).code(),
            StatusCode::kInvalidArgument);
  StreamConfig huge_in_flight = Config();
  huge_in_flight.max_in_flight = kMaxStreamInFlight + 1;
  EXPECT_EQ(scheduler.Open("s", huge_in_flight).code(),
            StatusCode::kInvalidArgument);

  StreamConfig resolved_out = Config();
  StreamConfig resolved;
  ASSERT_TRUE(scheduler.Open("s", resolved_out, &resolved).ok());
  EXPECT_EQ(resolved.window, 8);   // defaulted to the model's window
  EXPECT_GE(resolved.history, 8 + 2);
  EXPECT_EQ(scheduler.Open("s", Config()).code(),
            StatusCode::kFailedPrecondition);  // name taken
  EXPECT_EQ(scheduler.Close("nope").code(), StatusCode::kNotFound);
  ASSERT_TRUE(scheduler.Close("s").ok());
  EXPECT_FALSE(scheduler.Append("s", Tensor::Zeros(Shape{3, 1})).ok());
}

TEST_F(SchedulerTest, EmitsEverySlidingWindowInOrder) {
  serve::InferenceEngine engine(&registry());
  WindowScheduler scheduler(&engine);
  StreamConfig config = Config(/*stride=*/2);
  config.history = 64;
  ASSERT_TRUE(scheduler.Open("s", config).ok());

  const Tensor series = RandomSeries(3, 40, 3);
  // Append in uneven chunks to exercise partial-window arrivals.
  const std::vector<int64_t> chunks = {3, 1, 8, 5, 2, 7, 9, 4, 1};
  int64_t t = 0;
  for (const int64_t chunk : chunks) {
    const int64_t k = std::min(chunk, 40 - t);
    if (k <= 0) break;
    ASSERT_TRUE(scheduler.Append("s", Columns(series, t, t + k)).ok());
    t += k;
  }
  ASSERT_EQ(t, 40);
  scheduler.Flush();

  const auto stats = scheduler.GetStats("s");
  ASSERT_TRUE(stats.ok());
  // Windows end at 8, 10, ..., 40: (40-8)/2 + 1 = 17.
  EXPECT_EQ(stats->windows_emitted, 17u);
  EXPECT_EQ(stats->windows_completed, 17u);
  EXPECT_EQ(stats->windows_failed, 0u);
  EXPECT_EQ(stats->windows_dropped, 0u);
  EXPECT_EQ(stats->pending, 0u);

  const auto reports = scheduler.Take("s");
  ASSERT_TRUE(reports.ok());
  ASSERT_EQ(reports->size(), 17u);
  for (size_t i = 0; i < reports->size(); ++i) {
    const StreamReport& report = (*reports)[i];
    EXPECT_EQ(report.window_index, i);
    EXPECT_EQ(report.window_start, static_cast<int64_t>(i) * 2);
    EXPECT_EQ(report.num_series, 3);
    EXPECT_EQ(report.has_baseline, i > 0);  // drift needs a previous window
  }
  // Drained means gone.
  EXPECT_TRUE(scheduler.Take("s")->empty());
}

TEST_F(SchedulerTest, IncrementalHashesHitTheScoreCacheAcrossStreams) {
  serve::InferenceEngine engine(&registry());
  WindowScheduler scheduler(&engine);
  const Tensor series = RandomSeries(3, 32, 5);

  StreamConfig config = Config(/*stride=*/1);
  config.history = 32;
  ASSERT_TRUE(scheduler.Open("a", config).ok());
  ASSERT_TRUE(scheduler.Append("a", series).ok());
  scheduler.Flush();
  const uint64_t hits_before = engine.cache_stats().hits;
  const auto stats_a = *scheduler.GetStats("a");
  EXPECT_EQ(stats_a.windows_emitted, 25u);  // (32-8)/1 + 1

  // A second subscriber to the same feed: every window is content-identical,
  // and the scheduler's *incrementally computed* hashes must land on the
  // exact cache keys the first pass filled.
  ASSERT_TRUE(scheduler.Open("b", config).ok());
  ASSERT_TRUE(scheduler.Append("b", series).ok());
  scheduler.Flush();
  const auto stats_b = *scheduler.GetStats("b");
  EXPECT_EQ(stats_b.windows_emitted, 25u);
  EXPECT_EQ(stats_b.cache_hits, 25u);
  EXPECT_EQ(engine.cache_stats().hits - hits_before, 25u);

  // And the cached results are the same objects a direct Detect would get:
  // submit the first window tensor through the plain engine path.
  serve::DiscoveryRequest request;
  request.model = "m";
  request.windows = Tensor::Zeros(Shape{1, 3, 8});
  float* p = request.windows.data();
  const float* src = series.data();
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 8; ++j) p[i * 8 + j] = src[i * 32 + j];
  }
  const auto response = engine.Discover(std::move(request));
  ASSERT_TRUE(response.status.ok());
  EXPECT_TRUE(response.cache_hit);
}

TEST_F(SchedulerTest, RingOverrunDropsWindowsLoudly) {
  serve::InferenceEngine engine(&registry());
  WindowScheduler scheduler(&engine);
  StreamConfig config = Config(/*stride=*/1);
  config.history = 12;      // tiny ring
  config.max_in_flight = 1; // force a backlog while detection runs
  ASSERT_TRUE(scheduler.Open("s", config).ok());

  // One big append: 64 samples into a 12-sample ring. Most windows' data is
  // overwritten before detection can get to them.
  const Tensor series = RandomSeries(3, 64, 9);
  ASSERT_TRUE(scheduler.Append("s", series).ok());
  scheduler.Flush();

  const auto stats = *scheduler.GetStats("s");
  // Every window either ran or was dropped — none silently vanished.
  EXPECT_EQ(stats.windows_emitted + stats.windows_dropped, 57u);  // (64-8)+1
  EXPECT_GT(stats.windows_dropped, 0u);
  EXPECT_EQ(stats.windows_completed, stats.windows_emitted);
  EXPECT_EQ(stats.pending, 0u);

  // Window indices stay contiguous with the drop accounting: the last
  // report's index is the total emission count minus one.
  const auto reports = *scheduler.Take("s");
  ASSERT_FALSE(reports.empty());
  EXPECT_EQ(reports.back().window_index,
            stats.windows_emitted + stats.windows_dropped - 1);
}

TEST_F(SchedulerTest, ClosingAStreamPrunesItsExpiredCacheEntries) {
  serve::EngineOptions eopts;
  eopts.cache_ttl_seconds = 1e-6;  // everything is stale almost immediately
  serve::InferenceEngine engine(&registry(), eopts);
  WindowScheduler scheduler(&engine);
  StreamConfig config = Config(/*stride=*/2);
  config.history = 32;
  ASSERT_TRUE(scheduler.Open("s", config).ok());
  ASSERT_TRUE(scheduler.Append("s", RandomSeries(3, 24, 19)).ok());
  scheduler.Flush();
  ASSERT_GT(engine.cache_stats().size, 0u);

  // The dead stream's windows are never probed again, so lazy expiry would
  // leave them resident; Close sweeps them eagerly.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_TRUE(scheduler.Close("s").ok());
  EXPECT_EQ(engine.cache_stats().size, 0u);
  EXPECT_GT(engine.cache_stats().expirations, 0u);
}

TEST_F(SchedulerTest, ReportBoundDropsOldestReports) {
  serve::InferenceEngine engine(&registry());
  WindowScheduler scheduler(&engine);
  StreamConfig config = Config(/*stride=*/1);
  config.history = 64;
  config.max_reports = 4;
  ASSERT_TRUE(scheduler.Open("s", config).ok());
  ASSERT_TRUE(scheduler.Append("s", RandomSeries(3, 24, 13)).ok());
  scheduler.Flush();

  const auto stats = *scheduler.GetStats("s");
  EXPECT_EQ(stats.windows_emitted, 17u);
  EXPECT_EQ(stats.reports_dropped, 13u);
  const auto reports = *scheduler.Take("s");
  ASSERT_EQ(reports.size(), 4u);
  EXPECT_EQ(reports.back().window_index, 16u);  // newest retained
}

// ---- Wire loopback ---------------------------------------------------------

TEST(StreamWireTest, EndToEndOverTcp) {
  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", TinyModel()).ok());
  serve::InferenceEngine engine(&registry);
  WindowScheduler scheduler(&engine);
  serve::WireServerOptions options;
  options.stream_backend = &scheduler;
  serve::WireServer server(&engine, options);
  ASSERT_TRUE(server.Start().ok());

  serve::WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  serve::wire::StreamOpenMsg open;
  open.stream = "tcp";
  open.model = "m";
  open.stride = 2;
  const auto opened = client.OpenStream(open);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened->window, 8);
  EXPECT_EQ(opened->stride, 2);
  EXPECT_GE(opened->history, 10);

  // Re-opening the same name is a request-level error; the connection lives.
  EXPECT_EQ(client.OpenStream(open).status().code(),
            StatusCode::kFailedPrecondition);

  const Tensor series = RandomSeries(3, 24, 21);
  uint64_t emitted = 0;
  for (int64_t t = 0; t < 24; t += 4) {
    const auto ack = client.AppendSamples("tcp", Columns(series, t, t + 4));
    ASSERT_TRUE(ack.ok());
    EXPECT_EQ(ack->total_samples, static_cast<uint64_t>(t + 4));
    emitted = ack->windows_emitted;
  }
  // The ack is a point-in-time counter: windows beyond the in-flight bound
  // are emitted as completions free slots, so this is only a lower bound.
  EXPECT_GE(emitted, 1u);

  // Windows end at 8, 10, ..., 24 = 9 in total; drain reports until every
  // one arrived (detections are async).
  constexpr size_t kExpectedWindows = 9;
  std::vector<serve::wire::StreamReportMsg> all;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (all.size() < kExpectedWindows &&
         std::chrono::steady_clock::now() < deadline) {
    const auto reports = client.StreamReports("tcp");
    ASSERT_TRUE(reports.ok());
    all.insert(all.end(), reports->begin(), reports->end());
    if (all.size() < kExpectedWindows) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_EQ(all.size(), kExpectedWindows);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].window_index, i);
    EXPECT_EQ(all[i].window_start, static_cast<int64_t>(i) * 2);
    EXPECT_EQ(all[i].num_series, 3);
    EXPECT_EQ(all[i].has_baseline, i > 0);
  }

  // Unknown stream: request-level NOT_FOUND, connection still usable.
  EXPECT_EQ(client.AppendSamples("ghost", Columns(series, 0, 1))
                .status()
                .code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(client.CloseStream("tcp").ok());
  EXPECT_EQ(client.CloseStream("tcp").code(), StatusCode::kNotFound);
  ASSERT_TRUE(client.Ping(1).ok());
}

// The ISSUE-5 satellite fix: two streams replaying the same ring pattern
// used to double-run every overlapping window whose twin was still in
// flight (the cache only catches *completed* work). The precomputed
// incremental hash now feeds the engine's in-flight dedup table, so the
// second stream's identical windows park as followers instead — observable
// as StreamStats::windows_deduped, the per-report `deduped` flag and the
// AppendSamplesOk `deduped_windows` counter.
TEST_F(SchedulerTest, IdenticalWindowsAcrossStreamsDedupInFlight) {
  if (ThreadPool::Global().num_threads() <= 1) {
    GTEST_SKIP() << "needs a multi-worker pool to hold windows in flight";
  }
  // Count what the detector actually computes; disable the cache so only
  // in-flight dedup can coalesce the twin stream.
  std::atomic<int> computed{0};
  serve::EngineOptions eopts;
  eopts.cache_capacity = 0;
  eopts.detect_observer_for_testing = [&](const serve::CacheKey&) {
    ++computed;
  };
  serve::InferenceEngine engine(&registry(), eopts);
  WindowScheduler scheduler(&engine);

  StreamConfig config = Config(/*stride=*/2);
  config.history = 64;
  config.max_in_flight = 16;  // hold every window of the feed in flight
  ASSERT_TRUE(scheduler.Open("a", config).ok());
  ASSERT_TRUE(scheduler.Open("b", config).ok());

  // 24 samples, width 8, stride 2: windows end at 8, 10, ..., 24 — nine per
  // stream, identical content across the two streams.
  const Tensor series = RandomSeries(3, 24, 77);

  serve::testutil::PoolHostage hostage;
  ASSERT_TRUE(scheduler.Append("a", series).ok());
  const auto b_ack = scheduler.AppendSamples("b", series);  // wire adapter
  ASSERT_TRUE(b_ack.ok());
  EXPECT_EQ(b_ack->windows_emitted, 9u);

  // All 9 of a's windows are in flight; all 9 of b's parked on them.
  EXPECT_EQ(engine.dedup_stats().hits, 9u);
  hostage.Release();
  scheduler.Flush();

  EXPECT_EQ(computed.load(), 9);  // b's feed cost zero detection passes
  const auto a_stats = *scheduler.GetStats("a");
  const auto b_stats = *scheduler.GetStats("b");
  EXPECT_EQ(a_stats.windows_completed, 9u);
  EXPECT_EQ(a_stats.windows_deduped, 0u);
  EXPECT_EQ(b_stats.windows_completed, 9u);
  EXPECT_EQ(b_stats.windows_deduped, 9u);
  EXPECT_EQ(b_stats.windows_failed, 0u);

  // The lifetime counter reaches the wire ack struct (a no-window append
  // returns the post-append counters without emitting anything new).
  const auto idle_ack =
      scheduler.AppendSamples("b", Tensor::Zeros(Shape{3, 1}));
  ASSERT_TRUE(idle_ack.ok());
  EXPECT_EQ(idle_ack->deduped_windows, 9u);

  // And the per-report flag survives the wire mapping: every one of b's
  // reports is marked deduped, with graphs identical to a's.
  const auto a_reports = *scheduler.Take("a");
  const auto b_reports = *scheduler.TakeReports("b", 0);
  ASSERT_EQ(a_reports.size(), 9u);
  ASSERT_EQ(b_reports.size(), 9u);
  for (size_t i = 0; i < b_reports.size(); ++i) {
    EXPECT_TRUE(b_reports[i].deduped) << "report " << i;
    EXPECT_FALSE(a_reports[i].deduped) << "report " << i;
    ASSERT_EQ(b_reports[i].edges.size(), a_reports[i].edges.size());
  }
}

TEST(StreamWireTest, StreamingDisabledWithoutBackend) {
  serve::ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", TinyModel()).ok());
  serve::InferenceEngine engine(&registry);
  serve::WireServer server(&engine);  // no stream backend
  ASSERT_TRUE(server.Start().ok());

  serve::WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  serve::wire::StreamOpenMsg open;
  open.stream = "s";
  open.model = "m";
  EXPECT_EQ(client.OpenStream(open).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(client.StreamReports("s").status().code(),
            StatusCode::kFailedPrecondition);
  // The connection survives the rejections.
  ASSERT_TRUE(client.Ping(7).ok());
}

}  // namespace
}  // namespace stream
}  // namespace causalformer
