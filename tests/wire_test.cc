#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/detector.h"
#include "nn/serialize.h"
#include "obs/flight_recorder.h"
#include "obs/observability.h"
#include "obs/profiler.h"
#include "obs/trace_export.h"
#include "serve/client.h"
#include "serve/inference_engine.h"
#include "serve/model_registry.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "util/crc32.h"
#include "util/rng.h"
#include "util/socket.h"
#include "util/thread_pool.h"

#include "serve_test_util.h"

// Wire-protocol tests: frame codec round-trips, the documented example
// frames from docs/wire-protocol.md (kept byte-for-byte in sync), fuzz-style
// malformed-input decoding, and loopback server/client round-trips against a
// live InferenceEngine.

namespace causalformer {
namespace serve {
namespace {

core::ModelOptions TinyModelOptions(int64_t num_series = 3,
                                    int64_t window = 8) {
  core::ModelOptions opt;
  opt.num_series = num_series;
  opt.window = window;
  opt.d_model = 16;
  opt.d_qk = 16;
  opt.heads = 2;
  opt.d_ffn = 16;
  return opt;
}

std::unique_ptr<core::CausalityTransformer> TinyModel(uint64_t seed = 7) {
  Rng rng(seed);
  return std::make_unique<core::CausalityTransformer>(TinyModelOptions(), &rng);
}

Tensor RandomWindows(int64_t b, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Randn(Shape{b, 3, 8}, &rng);
}

wire::Frame MustDecode(const std::vector<uint8_t>& bytes) {
  wire::Frame frame;
  size_t consumed = 0;
  std::string error;
  const auto result = wire::DecodeFrame(bytes.data(), bytes.size(), &frame,
                                        &consumed, &error);
  EXPECT_EQ(result, wire::DecodeResult::kFrame) << error;
  EXPECT_EQ(consumed, bytes.size());
  return frame;
}

// ---- CRC ------------------------------------------------------------------

TEST(Crc32Test, KnownCheckValue) {
  // The standard CRC-32 check vector.
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
}

TEST(Crc32Test, ChainingMatchesOneShot) {
  const std::string data = "length-prefixed wire protocol";
  const uint32_t oneshot = Crc32(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t first = Crc32(data.data(), split);
    EXPECT_EQ(Crc32(data.data() + split, data.size() - split, first), oneshot);
  }
}

// ---- Documented example frames (docs/wire-protocol.md §7) -----------------

TEST(WireFrameTest, DocumentedPingFrameBytes) {
  const uint8_t kExpected[] = {
      0x43, 0x46, 0x57, 0x50, 0x07, 0x01, 0x00, 0x00,  // magic, v6, Ping
      0x08, 0x00, 0x00, 0x00, 0x25, 0xed, 0xcc, 0xa5,  // length 8, CRC
      0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // token LE
  };
  const auto frame = wire::EncodeFrame(wire::MessageType::kPing,
                                       wire::EncodePing(0x0102030405060708ull));
  ASSERT_EQ(frame.size(), sizeof(kExpected));
  EXPECT_EQ(std::memcmp(frame.data(), kExpected, sizeof(kExpected)), 0);
}

TEST(WireFrameTest, DocumentedDetectFrameBytes) {
  // The worked Detect hex dump: model "demo", default detector options,
  // windows [B=1, N=2, T=2] = {1, 2, 3, 4}.
  const uint8_t kExpected[] = {
      0x43, 0x46, 0x57, 0x50, 0x07, 0x07, 0x00, 0x00,
      0x39, 0x00, 0x00, 0x00, 0x46, 0x5a, 0xa4, 0xc2,
      0x04, 0x00, 0x00, 0x00, 0x64, 0x65, 0x6d, 0x6f,
      0x02, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
      0x20, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x0f, 0xbd, 0x37, 0x86, 0x35, 0x01, 0x00, 0x00,
      0x00, 0x02, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x80, 0x3f, 0x00, 0x00, 0x00,
      0x40, 0x00, 0x00, 0x40, 0x40, 0x00, 0x00, 0x80,
      0x40,
  };
  wire::DetectMsg msg;
  msg.model = "demo";
  msg.windows = Tensor::FromVector(Shape{1, 2, 2}, {1.f, 2.f, 3.f, 4.f});
  const auto frame =
      wire::EncodeFrame(wire::MessageType::kDetect, wire::EncodeDetect(msg));
  ASSERT_EQ(frame.size(), sizeof(kExpected));
  EXPECT_EQ(std::memcmp(frame.data(), kExpected, sizeof(kExpected)), 0);
}

// The v2 streaming frames, byte for byte against the §7.4–§7.7 hex dumps of
// docs/wire-protocol.md. One documented-frame test per new message type, so
// any layout change must touch the spec too.

TEST(WireFrameTest, DocumentedStreamOpenFrameBytes) {
  // Stream "s1" on model "demo": stride 2, defaults everywhere else
  // (window/history 0 = server-resolved, max_in_flight 4, max_reports 256,
  // default detector options, drift thresholds 0.25/0.34, stability 3).
  const uint8_t kExpected[] = {
      0x43, 0x46, 0x57, 0x50, 0x07, 0x0f, 0x00, 0x00,
      0x57, 0x00, 0x00, 0x00, 0x26, 0x66, 0x96, 0xf6,
      0x02, 0x00, 0x00, 0x00, 0x73, 0x31, 0x04, 0x00,
      0x00, 0x00, 0x64, 0x65, 0x6d, 0x6f, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x02, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x00,
      0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x02, 0x00,
      0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x20, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x0f, 0xbd,
      0x37, 0x86, 0x35, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0xd0, 0x3f, 0xc3, 0xf5, 0x28, 0x5c, 0x8f,
      0xc2, 0xd5, 0x3f, 0x03, 0x00, 0x00, 0x00,
  };
  wire::StreamOpenMsg msg;
  msg.stream = "s1";
  msg.model = "demo";
  msg.stride = 2;
  const auto frame = wire::EncodeFrame(wire::MessageType::kStreamOpen,
                                       wire::EncodeStreamOpen(msg));
  ASSERT_EQ(frame.size(), sizeof(kExpected));
  EXPECT_EQ(std::memcmp(frame.data(), kExpected, sizeof(kExpected)), 0);
}

TEST(WireFrameTest, DocumentedStreamOpenOkFrameBytes) {
  // Resolved config: window 8, stride 2, history 32.
  const uint8_t kExpected[] = {
      0x43, 0x46, 0x57, 0x50, 0x07, 0x10, 0x00, 0x00,
      0x18, 0x00, 0x00, 0x00, 0xab, 0xb1, 0x1a, 0x0f,
      0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x20, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
  };
  wire::StreamOpenOkMsg msg;
  msg.window = 8;
  msg.stride = 2;
  msg.history = 32;
  const auto frame = wire::EncodeFrame(wire::MessageType::kStreamOpenOk,
                                       wire::EncodeStreamOpenOk(msg));
  ASSERT_EQ(frame.size(), sizeof(kExpected));
  EXPECT_EQ(std::memcmp(frame.data(), kExpected, sizeof(kExpected)), 0);
}

TEST(WireFrameTest, DocumentedStreamCloseFrameBytes) {
  const uint8_t kExpected[] = {
      0x43, 0x46, 0x57, 0x50, 0x07, 0x11, 0x00, 0x00,
      0x06, 0x00, 0x00, 0x00, 0xa7, 0x2a, 0xc6, 0xa9,
      0x02, 0x00, 0x00, 0x00, 0x73, 0x31,
  };
  const auto frame = wire::EncodeFrame(wire::MessageType::kStreamClose,
                                       wire::EncodeStreamClose("s1"));
  ASSERT_EQ(frame.size(), sizeof(kExpected));
  EXPECT_EQ(std::memcmp(frame.data(), kExpected, sizeof(kExpected)), 0);
}

TEST(WireFrameTest, DocumentedStreamCloseOkFrameBytes) {
  // Empty payload: header only, CRC of zero bytes is 0.
  const uint8_t kExpected[] = {
      0x43, 0x46, 0x57, 0x50, 0x07, 0x12, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
  };
  const auto frame = wire::EncodeFrame(wire::MessageType::kStreamCloseOk, {});
  ASSERT_EQ(frame.size(), sizeof(kExpected));
  EXPECT_EQ(std::memcmp(frame.data(), kExpected, sizeof(kExpected)), 0);
}

TEST(WireFrameTest, DocumentedAppendSamplesFrameBytes) {
  // Stream "s1", samples [N=2, K=2] = {1, 2, 3, 4} (series-major).
  const uint8_t kExpected[] = {
      0x43, 0x46, 0x57, 0x50, 0x07, 0x13, 0x00, 0x00,
      0x1e, 0x00, 0x00, 0x00, 0x89, 0x85, 0x94, 0x52,
      0x02, 0x00, 0x00, 0x00, 0x73, 0x31, 0x02, 0x00,
      0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x80, 0x3f, 0x00, 0x00, 0x00, 0x40, 0x00, 0x00,
      0x40, 0x40, 0x00, 0x00, 0x80, 0x40,
  };
  wire::AppendSamplesMsg msg;
  msg.stream = "s1";
  msg.samples = Tensor::FromVector(Shape{2, 2}, {1.f, 2.f, 3.f, 4.f});
  const auto frame = wire::EncodeFrame(wire::MessageType::kAppendSamples,
                                       wire::EncodeAppendSamples(msg));
  ASSERT_EQ(frame.size(), sizeof(kExpected));
  EXPECT_EQ(std::memcmp(frame.data(), kExpected, sizeof(kExpected)), 0);
}

TEST(WireFrameTest, DocumentedAppendSamplesOkFrameBytes) {
  // total_samples 10, windows_emitted 2, windows_dropped 0,
  // windows_failed 0, pending 1, deduped_windows 1 (v3).
  const uint8_t kExpected[] = {
      0x43, 0x46, 0x57, 0x50, 0x07, 0x14, 0x00, 0x00,
      0x2c, 0x00, 0x00, 0x00, 0x13, 0x30, 0xdb, 0xfb,
      0x0a, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00,
  };
  wire::AppendSamplesOkMsg msg;
  msg.total_samples = 10;
  msg.windows_emitted = 2;
  msg.pending = 1;
  msg.deduped_windows = 1;
  const auto frame = wire::EncodeFrame(wire::MessageType::kAppendSamplesOk,
                                       wire::EncodeAppendSamplesOk(msg));
  ASSERT_EQ(frame.size(), sizeof(kExpected));
  EXPECT_EQ(std::memcmp(frame.data(), kExpected, sizeof(kExpected)), 0);
}

TEST(WireFrameTest, DocumentedStatsResultFrameBytes) {
  // The §7.8 StatsResult dump: cache 7 hits / 2 misses / 1 eviction /
  // 0 expirations, 4/256 entries; batcher 9 requests, 5 batches (max 3),
  // 4 coalesced, 0 rejected; dedup 6 hits, 1 in flight; admission limit 2,
  // 1 shape bucket; server 1 connection, 12 frames, 0 wire errors; no
  // models; no shard rows (the trailing v6 count of 0).
  const uint8_t kExpected[] = {
      0x43, 0x46, 0x57, 0x50, 0x07, 0x0c, 0x00, 0x00,
      0x8c, 0x00, 0x00, 0x00, 0xac, 0xae, 0x90, 0x68,
      0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x06, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00,
      0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x0c, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00,
  };
  wire::StatsResultMsg msg;
  msg.cache_hits = 7;
  msg.cache_misses = 2;
  msg.cache_evictions = 1;
  msg.cache_size = 4;
  msg.cache_capacity = 256;
  msg.batch_requests = 9;
  msg.batch_batches = 5;
  msg.batch_coalesced = 4;
  msg.batch_max = 3;
  msg.dedup_hits = 6;
  msg.dedup_in_flight = 1;
  msg.batch_in_flight_limit = 2;
  msg.batch_shape_buckets = 1;
  msg.server_connections = 1;
  msg.server_frames = 12;
  const auto frame = wire::EncodeFrame(wire::MessageType::kStatsResult,
                                       wire::EncodeStatsResult(msg));
  ASSERT_EQ(frame.size(), sizeof(kExpected));
  EXPECT_EQ(std::memcmp(frame.data(), kExpected, sizeof(kExpected)), 0);
}

TEST(WireFrameTest, DocumentedShardedStatsResultFrameBytes) {
  // The second §7.8 dump: the same counters from a two-shard pool mid-drain
  // — shard 0 live (5 routed), shard 1 draining after 1 restart (4 routed).
  const uint8_t kExpected[] = {
      0x43, 0x46, 0x57, 0x50, 0x07, 0x0c, 0x00, 0x00,
      0x06, 0x01, 0x00, 0x00, 0x86, 0x82, 0xeb, 0x15,
      0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x06, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00,
      0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x0c, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x01, 0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x04, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x01, 0x00, 0x00, 0x00, 0x02, 0x04, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x02, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x03, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x02, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
  };
  wire::StatsResultMsg msg;
  msg.cache_hits = 7;
  msg.cache_misses = 2;
  msg.cache_evictions = 1;
  msg.cache_size = 4;
  msg.cache_capacity = 256;
  msg.batch_requests = 9;
  msg.batch_batches = 5;
  msg.batch_coalesced = 4;
  msg.batch_max = 3;
  msg.dedup_hits = 6;
  msg.dedup_in_flight = 1;
  msg.batch_in_flight_limit = 2;
  msg.batch_shape_buckets = 1;
  msg.server_connections = 1;
  msg.server_frames = 12;
  wire::StatsResultMsg::Shard live;
  live.shard = 0;
  live.live = true;
  live.routed = 5;
  live.cache_hits = 4;
  live.cache_misses = 1;
  live.cache_size = 2;
  live.dedup_hits = 3;
  live.batch_batches = 3;
  wire::StatsResultMsg::Shard draining;
  draining.shard = 1;
  draining.draining = true;
  draining.routed = 4;
  draining.restarts = 1;
  draining.cache_hits = 3;
  draining.cache_misses = 1;
  draining.cache_size = 2;
  draining.dedup_hits = 3;
  draining.batch_batches = 2;
  msg.shards = {live, draining};
  const auto frame = wire::EncodeFrame(wire::MessageType::kStatsResult,
                                       wire::EncodeStatsResult(msg));
  ASSERT_EQ(frame.size(), sizeof(kExpected));
  EXPECT_EQ(std::memcmp(frame.data(), kExpected, sizeof(kExpected)), 0);
}

TEST(WireFrameTest, DocumentedStreamReportsFrameBytes) {
  // Stream "s1", max_reports 4.
  const uint8_t kExpected[] = {
      0x43, 0x46, 0x57, 0x50, 0x07, 0x15, 0x00, 0x00,
      0x0a, 0x00, 0x00, 0x00, 0x45, 0xc1, 0xea, 0x79,
      0x02, 0x00, 0x00, 0x00, 0x73, 0x31, 0x04, 0x00,
      0x00, 0x00,
  };
  wire::StreamReportsMsg msg;
  msg.stream = "s1";
  msg.max_reports = 4;
  const auto frame = wire::EncodeFrame(wire::MessageType::kStreamReports,
                                       wire::EncodeStreamReports(msg));
  ASSERT_EQ(frame.size(), sizeof(kExpected));
  EXPECT_EQ(std::memcmp(frame.data(), kExpected, sizeof(kExpected)), 0);
}

TEST(WireFrameTest, DocumentedStreamReportsResultFrameBytes) {
  // One report: window #3 starting at sample 6, has_baseline + drifted
  // (flags 0x06), batch 2, latency 0.5 s, n=2, one edge S0->S1(d=2, 1.0),
  // one consecutive drift, one edge added (also listed), mean Δ 0.25,
  // max Δ 0.5, jaccard 0, nothing removed.
  const uint8_t kExpected[] = {
      0x43, 0x46, 0x57, 0x50, 0x07, 0x16, 0x00, 0x00,
      0x85, 0x00, 0x00, 0x00, 0xcb, 0x65, 0x43, 0x3f,
      0x01, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x06, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x06, 0x02, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xe0,
      0x3f, 0x02, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00,
      0x00, 0x02, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0xf0, 0x3f, 0x01, 0x00, 0x00,
      0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xd0,
      0x3f, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xe0,
      0x3f, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x01, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf0,
      0x3f, 0x00, 0x00, 0x00, 0x00,
  };
  wire::StreamReportMsg report;
  report.window_index = 3;
  report.window_start = 6;
  report.has_baseline = true;
  report.drifted = true;
  report.batch_size = 2;
  report.latency_seconds = 0.5;
  report.num_series = 2;
  report.edges.push_back({0, 1, 2, 1.0});
  report.consecutive_drifts = 1;
  report.edges_added = 1;
  report.mean_abs_score_delta = 0.25;
  report.max_abs_score_delta = 0.5;
  report.jaccard = 0.0;
  report.added.push_back({0, 1, 2, 1.0});
  const auto frame =
      wire::EncodeFrame(wire::MessageType::kStreamReportsResult,
                        wire::EncodeStreamReportsResult({report}));
  ASSERT_EQ(frame.size(), sizeof(kExpected));
  EXPECT_EQ(std::memcmp(frame.data(), kExpected, sizeof(kExpected)), 0);
}

// The v4 metrics frames, byte for byte against the §7.9 hex dumps.

TEST(WireFrameTest, DocumentedMetricsFrameBytes) {
  // kMetrics carries no payload: header only, CRC of zero bytes is 0.
  const uint8_t kExpected[] = {
      0x43, 0x46, 0x57, 0x50, 0x07, 0x17, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
  };
  const auto frame = wire::EncodeFrame(wire::MessageType::kMetrics, {});
  ASSERT_EQ(frame.size(), sizeof(kExpected));
  EXPECT_EQ(std::memcmp(frame.data(), kExpected, sizeof(kExpected)), 0);
}

TEST(WireFrameTest, DocumentedMetricsResultFrameBytes) {
  // Exposition text "a 1\n", one histogram row: series "h" with count 1
  // and sum = p50 = p90 = p99 = 0.5.
  const uint8_t kExpected[] = {
      0x43, 0x46, 0x57, 0x50, 0x07, 0x18, 0x00, 0x00,
      0x39, 0x00, 0x00, 0x00, 0x33, 0x28, 0x27, 0xdf,
      0x04, 0x00, 0x00, 0x00, 0x61, 0x20, 0x31, 0x0a,
      0x01, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00,
      0x68, 0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xe0,
      0x3f, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xe0,
      0x3f, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xe0,
      0x3f, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xe0,
      0x3f,
  };
  wire::MetricsResultMsg msg;
  msg.text = "a 1\n";
  wire::HistogramSummaryMsg row;
  row.name = "h";
  row.count = 1;
  row.sum = row.p50 = row.p90 = row.p99 = 0.5;
  msg.histograms.push_back(row);
  const auto frame = wire::EncodeFrame(wire::MessageType::kMetricsResult,
                                       wire::EncodeMetricsResult(msg));
  ASSERT_EQ(frame.size(), sizeof(kExpected));
  EXPECT_EQ(std::memcmp(frame.data(), kExpected, sizeof(kExpected)), 0);
}

// The v5 diagnostics frames, byte for byte against the §7.10 hex dumps.

TEST(WireFrameTest, DocumentedDumpFrameBytes) {
  // kDump carries no payload: header only, CRC of zero bytes is 0.
  const uint8_t kExpected[] = {
      0x43, 0x46, 0x57, 0x50, 0x07, 0x19, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
  };
  const auto frame = wire::EncodeFrame(wire::MessageType::kDump, {});
  ASSERT_EQ(frame.size(), sizeof(kExpected));
  EXPECT_EQ(std::memcmp(frame.data(), kExpected, sizeof(kExpected)), 0);
}

TEST(WireFrameTest, DocumentedDumpResultFrameBytes) {
  // A one-file bundle: "metrics.txt" containing "a 1\n".
  const uint8_t kExpected[] = {
      0x43, 0x46, 0x57, 0x50, 0x07, 0x1a, 0x00, 0x00,
      0x1b, 0x00, 0x00, 0x00, 0x5d, 0x4f, 0xb7, 0x3f,
      0x01, 0x00, 0x00, 0x00, 0x0b, 0x00, 0x00, 0x00,
      0x6d, 0x65, 0x74, 0x72, 0x69, 0x63, 0x73, 0x2e,
      0x74, 0x78, 0x74, 0x04, 0x00, 0x00, 0x00, 0x61,
      0x20, 0x31, 0x0a,
  };
  wire::DumpResultMsg msg;
  msg.files.push_back({"metrics.txt", "a 1\n"});
  const auto frame = wire::EncodeFrame(wire::MessageType::kDumpResult,
                                       wire::EncodeDumpResult(msg));
  ASSERT_EQ(frame.size(), sizeof(kExpected));
  EXPECT_EQ(std::memcmp(frame.data(), kExpected, sizeof(kExpected)), 0);
}

TEST(WireCodecTest, DumpResultRoundTrips) {
  wire::DumpResultMsg msg;
  msg.files.push_back({"logs.txt", "line one\nline two\n"});
  msg.files.push_back({"trace.json", "{\"traceEvents\":[]}\n"});
  msg.files.push_back({"empty.txt", ""});
  wire::DumpResultMsg decoded;
  ASSERT_TRUE(
      wire::DecodeDumpResult(wire::EncodeDumpResult(msg), &decoded).ok());
  ASSERT_EQ(decoded.files.size(), 3u);
  for (size_t i = 0; i < msg.files.size(); ++i) {
    EXPECT_EQ(decoded.files[i].name, msg.files[i].name);
    EXPECT_EQ(decoded.files[i].content, msg.files[i].content);
  }
}

TEST(WireCodecTest, DumpResultRejectsHostileCount) {
  // A tiny payload claiming 2^31 files must be rejected before any reserve.
  std::vector<uint8_t> payload = {0x00, 0x00, 0x00, 0x80};
  wire::DumpResultMsg msg;
  EXPECT_FALSE(wire::DecodeDumpResult(payload, &msg).ok());
}

TEST(WireCodecTest, DumpResultRejectsTrailingBytes) {
  wire::DumpResultMsg msg;
  msg.files.push_back({"a", "b"});
  auto payload = wire::EncodeDumpResult(msg);
  payload.push_back(0);
  wire::DumpResultMsg decoded;
  EXPECT_FALSE(wire::DecodeDumpResult(payload, &decoded).ok());
}

// The v7 profiling frames, byte for byte against the §7.11 hex dumps.

TEST(WireFrameTest, DocumentedProfileFrameBytes) {
  // A two-second sampling window: payload is one u32.
  const uint8_t kExpected[] = {
      0x43, 0x46, 0x57, 0x50, 0x07, 0x1b, 0x00, 0x00,
      0x04, 0x00, 0x00, 0x00, 0x97, 0x17, 0x4d, 0x8b,
      0x02, 0x00, 0x00, 0x00,
  };
  wire::ProfileMsg msg;
  msg.seconds = 2;
  const auto frame = wire::EncodeFrame(wire::MessageType::kProfile,
                                       wire::EncodeProfile(msg));
  ASSERT_EQ(frame.size(), sizeof(kExpected));
  EXPECT_EQ(std::memcmp(frame.data(), kExpected, sizeof(kExpected)), 0);
}

TEST(WireFrameTest, DocumentedProfileResultFrameBytes) {
  // 3 samples, 1 drop, folded text "a;b 3\n", chrome JSON "{}".
  const uint8_t kExpected[] = {
      0x43, 0x46, 0x57, 0x50, 0x07, 0x1c, 0x00, 0x00,
      0x20, 0x00, 0x00, 0x00, 0x67, 0xec, 0x7b, 0xed,
      0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x06, 0x00, 0x00, 0x00, 0x61, 0x3b, 0x62, 0x20,
      0x33, 0x0a, 0x02, 0x00, 0x00, 0x00, 0x7b, 0x7d,
  };
  wire::ProfileResultMsg msg;
  msg.samples = 3;
  msg.drops = 1;
  msg.folded = "a;b 3\n";
  msg.json = "{}";
  const auto frame = wire::EncodeFrame(wire::MessageType::kProfileResult,
                                       wire::EncodeProfileResult(msg));
  ASSERT_EQ(frame.size(), sizeof(kExpected));
  EXPECT_EQ(std::memcmp(frame.data(), kExpected, sizeof(kExpected)), 0);
}

TEST(WireCodecTest, ProfileRoundTrips) {
  wire::ProfileMsg msg;
  msg.seconds = 30;
  wire::ProfileMsg decoded;
  ASSERT_TRUE(wire::DecodeProfile(wire::EncodeProfile(msg), &decoded).ok());
  EXPECT_EQ(decoded.seconds, 30u);
}

TEST(WireCodecTest, ProfileRejectsTrailingBytes) {
  auto payload = wire::EncodeProfile(wire::ProfileMsg{});
  payload.push_back(0);
  wire::ProfileMsg decoded;
  EXPECT_FALSE(wire::DecodeProfile(payload, &decoded).ok());
}

TEST(WireCodecTest, ProfileResultRoundTrips) {
  wire::ProfileResultMsg msg;
  msg.samples = 1234567;
  msg.drops = 89;
  msg.folded = "cf-poll;PollLoop;read 41\ncf-exec-0;Detect 7\n";
  msg.json = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}";
  wire::ProfileResultMsg decoded;
  ASSERT_TRUE(
      wire::DecodeProfileResult(wire::EncodeProfileResult(msg), &decoded)
          .ok());
  EXPECT_EQ(decoded.samples, msg.samples);
  EXPECT_EQ(decoded.drops, msg.drops);
  EXPECT_EQ(decoded.folded, msg.folded);
  EXPECT_EQ(decoded.json, msg.json);
}

TEST(WireCodecTest, ProfileResultRejectsTruncation) {
  const auto payload = wire::EncodeProfileResult(wire::ProfileResultMsg{});
  for (size_t len = 0; len < payload.size(); ++len) {
    std::vector<uint8_t> prefix(payload.begin(), payload.begin() + len);
    wire::ProfileResultMsg decoded;
    EXPECT_FALSE(wire::DecodeProfileResult(prefix, &decoded).ok())
        << "prefix length " << len;
  }
}

// ---- Frame codec ----------------------------------------------------------

TEST(WireFrameTest, RoundTripPreservesTypeAndPayload) {
  const std::vector<uint8_t> payload = {1, 2, 3, 250, 0, 42};
  const auto bytes = wire::EncodeFrame(wire::MessageType::kStats, payload);
  const auto frame = MustDecode(bytes);
  EXPECT_EQ(frame.version, wire::kVersion);
  EXPECT_EQ(frame.type, wire::MessageType::kStats);
  EXPECT_EQ(frame.payload, payload);
}

TEST(WireFrameTest, EmptyPayloadRoundTrips) {
  const auto bytes = wire::EncodeFrame(wire::MessageType::kStats, {});
  const auto frame = MustDecode(bytes);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(WireFrameTest, EveryTruncationNeedsMore) {
  const auto bytes =
      wire::EncodeFrame(wire::MessageType::kPing, wire::EncodePing(7));
  for (size_t len = 0; len < bytes.size(); ++len) {
    wire::Frame frame;
    size_t consumed = 1;
    EXPECT_EQ(wire::DecodeFrame(bytes.data(), len, &frame, &consumed),
              wire::DecodeResult::kNeedMore)
        << "prefix length " << len;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(WireFrameTest, BadMagicDetectedFromFirstByte) {
  auto bytes = wire::EncodeFrame(wire::MessageType::kPing, wire::EncodePing(7));
  bytes[0] = 'X';
  wire::Frame frame;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(wire::DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed,
                              &error),
            wire::DecodeResult::kBadMagic);
  // A single wrong byte anywhere in the magic is enough, even pre-header.
  const uint8_t garbage[] = {'C', 'F', 'W', 'X'};
  EXPECT_EQ(wire::DecodeFrame(garbage, sizeof(garbage), &frame, &consumed),
            wire::DecodeResult::kBadMagic);
}

TEST(WireFrameTest, ReservedBytesMustBeZero) {
  auto bytes = wire::EncodeFrame(wire::MessageType::kPing, wire::EncodePing(7));
  bytes[6] = 1;
  wire::Frame frame;
  size_t consumed = 0;
  EXPECT_EQ(wire::DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed),
            wire::DecodeResult::kMalformed);
}

TEST(WireFrameTest, UnknownMessageTypeIsMalformed) {
  auto bytes = wire::EncodeFrame(wire::MessageType::kPing, wire::EncodePing(7));
  for (const uint8_t type : {uint8_t{0}, uint8_t{14}, uint8_t{255}}) {
    bytes[5] = type;
    wire::Frame frame;
    size_t consumed = 0;
    EXPECT_EQ(wire::DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed),
              wire::DecodeResult::kMalformed);
  }
}

TEST(WireFrameTest, OversizedLengthIsMalformed) {
  auto bytes = wire::EncodeFrame(wire::MessageType::kPing, wire::EncodePing(7));
  const uint32_t huge = wire::kMaxPayload + 1;
  for (int i = 0; i < 4; ++i) {
    bytes[8 + static_cast<size_t>(i)] = static_cast<uint8_t>(huge >> (8 * i));
  }
  wire::Frame frame;
  size_t consumed = 0;
  std::string error;
  EXPECT_EQ(wire::DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed,
                              &error),
            wire::DecodeResult::kMalformed);
  EXPECT_NE(error.find("kMaxPayload"), std::string::npos);
}

TEST(WireFrameTest, PayloadCorruptionFailsCrc) {
  const auto clean =
      wire::EncodeFrame(wire::MessageType::kPing, wire::EncodePing(7));
  // Flip every payload byte (and the CRC itself) one at a time.
  for (size_t i = 12; i < clean.size(); ++i) {
    auto bytes = clean;
    bytes[i] ^= 0x20;
    wire::Frame frame;
    size_t consumed = 0;
    EXPECT_EQ(wire::DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed),
              wire::DecodeResult::kMalformed)
        << "flipped byte " << i;
  }
}

TEST(WireFrameTest, HeaderByteFlipsNeverCrash) {
  const auto clean =
      wire::EncodeFrame(wire::MessageType::kDetect,
                        wire::EncodePing(0xDEADBEEFull));
  for (size_t i = 0; i < clean.size(); ++i) {
    for (const uint8_t mask : {0x01, 0x80, 0xFF}) {
      auto bytes = clean;
      bytes[i] ^= mask;
      wire::Frame frame;
      size_t consumed = 0;
      // Any outcome is fine; decoding must simply never crash or overread.
      (void)wire::DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed);
    }
  }
}

TEST(WireFrameTest, RandomGarbageNeverCrashes) {
  Rng rng(123);
  for (int round = 0; round < 200; ++round) {
    std::vector<uint8_t> bytes(static_cast<size_t>(rng.UniformInt(128)));
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.UniformInt(256));
    wire::Frame frame;
    size_t consumed = 0;
    (void)wire::DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed);
  }
}

TEST(WireFrameTest, BackToBackFramesDecodeSequentially) {
  auto bytes = wire::EncodeFrame(wire::MessageType::kPing, wire::EncodePing(1));
  const auto second =
      wire::EncodeFrame(wire::MessageType::kStats, {});
  bytes.insert(bytes.end(), second.begin(), second.end());

  wire::Frame frame;
  size_t consumed = 0;
  ASSERT_EQ(wire::DecodeFrame(bytes.data(), bytes.size(), &frame, &consumed),
            wire::DecodeResult::kFrame);
  EXPECT_EQ(frame.type, wire::MessageType::kPing);
  const size_t first_size = consumed;
  ASSERT_EQ(wire::DecodeFrame(bytes.data() + first_size,
                              bytes.size() - first_size, &frame, &consumed),
            wire::DecodeResult::kFrame);
  EXPECT_EQ(frame.type, wire::MessageType::kStats);
  EXPECT_EQ(first_size + consumed, bytes.size());
}

// ---- Typed payload codecs -------------------------------------------------

TEST(WireMessageTest, DetectRoundTrip) {
  wire::DetectMsg msg;
  msg.model = "prod";
  msg.options.num_clusters = 3;
  msg.options.top_clusters = 2;
  msg.options.max_windows = 5;
  msg.options.use_relevance = false;
  msg.options.epsilon = 0.25f;
  msg.windows = RandomWindows(2, 99);

  wire::DetectMsg decoded;
  ASSERT_TRUE(wire::DecodeDetect(wire::EncodeDetect(msg), &decoded).ok());
  EXPECT_EQ(decoded.model, "prod");
  EXPECT_TRUE(SameDetectorOptions(decoded.options, msg.options));
  ASSERT_EQ(decoded.windows.shape(), msg.windows.shape());
  EXPECT_EQ(std::memcmp(decoded.windows.data(), msg.windows.data(),
                        sizeof(float) * static_cast<size_t>(
                                            msg.windows.numel())),
            0);
}

TEST(WireMessageTest, DetectRejectsReservedFlagBits) {
  wire::DetectMsg msg;
  msg.model = "m";
  msg.windows = RandomWindows(1, 5);
  auto payload = wire::EncodeDetect(msg);
  // The flags byte sits after the 4+1 string and 4+4+8 option ints.
  payload[4 + 1 + 4 + 4 + 8] = 0x1F;
  wire::DetectMsg decoded;
  const Status st = wire::DecodeDetect(payload, &decoded);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("reserved flag bits"), std::string::npos);
}

TEST(WireMessageTest, EveryDetectPayloadTruncationFails) {
  wire::DetectMsg msg;
  msg.model = "abc";
  msg.windows = RandomWindows(1, 3);
  const auto payload = wire::EncodeDetect(msg);
  for (size_t len = 0; len < payload.size(); ++len) {
    std::vector<uint8_t> prefix(payload.begin(),
                                payload.begin() + static_cast<long>(len));
    wire::DetectMsg decoded;
    EXPECT_FALSE(wire::DecodeDetect(prefix, &decoded).ok())
        << "prefix length " << len;
  }
}

TEST(WireMessageTest, DetectRejectsOverflowingWindowDims) {
  // b = n = 2^31 makes b*n*t*4 wrap to 0 mod 2^64; a product-based size
  // check would pass and attempt an enormous allocation (remote DoS).
  std::vector<uint8_t> payload;
  wire::PayloadWriter w(&payload);
  w.Str("m");
  w.I32(2);
  w.I32(1);
  w.I64(32);
  w.U8(0x0F);
  w.F32(1e-6f);
  w.U32(0x80000000u);  // B
  w.U32(0x80000000u);  // N
  w.U32(1);            // T
  w.F32(0.0f);
  wire::DetectMsg decoded;
  EXPECT_FALSE(wire::DecodeDetect(payload, &decoded).ok());
}

TEST(WireMessageTest, DetectResultRejectsOverflowingSeriesCount) {
  // n = 2^31 makes n*n*12 wrap to 0 mod 2^64; a product-based check would
  // pass and construct a DetectionResult of INT_MIN series client-side.
  std::vector<uint8_t> payload;
  wire::PayloadWriter w(&payload);
  w.U8(0);
  w.I32(1);
  w.F64(0.0);
  w.U32(0x80000000u);  // n
  wire::DetectResultMsg decoded;
  EXPECT_FALSE(wire::DecodeDetectResult(payload, &decoded).ok());
}

TEST(WireMessageTest, DetectResultRoundTrip) {
  wire::DetectResultMsg msg;
  msg.cache_hit = true;
  msg.deduped = true;
  msg.batch_size = 4;
  msg.latency_seconds = 0.125;
  msg.result = core::DetectionResult(3);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      msg.result.scores.set(a, b, a * 10.0 + b + 0.5);
      msg.result.delays[static_cast<size_t>(a)][static_cast<size_t>(b)] =
          a + b;
    }
  }
  msg.result.graph.AddEdge(0, 1, 2, 0.75);
  msg.result.graph.AddEdge(2, 2, 1, 1.0);

  wire::DetectResultMsg decoded;
  ASSERT_TRUE(
      wire::DecodeDetectResult(wire::EncodeDetectResult(msg), &decoded).ok());
  EXPECT_TRUE(decoded.cache_hit);
  EXPECT_TRUE(decoded.deduped);
  EXPECT_EQ(decoded.batch_size, 4);
  EXPECT_EQ(decoded.latency_seconds, 0.125);
  ASSERT_EQ(decoded.result.scores.num_series(), 3);
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      EXPECT_EQ(decoded.result.scores.at(a, b), msg.result.scores.at(a, b));
      EXPECT_EQ(decoded.result.delays[static_cast<size_t>(a)]
                                     [static_cast<size_t>(b)],
                a + b);
    }
  }
  EXPECT_EQ(decoded.result.graph.num_edges(), 2);
  EXPECT_TRUE(decoded.result.graph.HasEdge(0, 1));
  EXPECT_EQ(decoded.result.graph.FindEdge(0, 1)->delay, 2);
}

TEST(WireMessageTest, DetectResultRejectsOutOfRangeEdge) {
  wire::DetectResultMsg msg;
  msg.result = core::DetectionResult(2);
  auto payload = wire::EncodeDetectResult(msg);
  // Append a forged edge with endpoints outside [0, 2).
  wire::PayloadWriter w(&payload);
  w.I32(5);
  w.I32(0);
  w.I32(0);
  w.F64(1.0);
  // Patch the edge count (last u32 before the appended edge).
  const size_t count_at = payload.size() - 20 - 4;
  payload[count_at] = 1;
  wire::DetectResultMsg decoded;
  EXPECT_FALSE(wire::DecodeDetectResult(payload, &decoded).ok());
}

TEST(WireMessageTest, LoadModelRoundTrip) {
  wire::LoadModelMsg msg;
  msg.name = "prod";
  msg.checkpoint_path = "/tmp/ck.cfpm";
  msg.options = TinyModelOptions(5, 12);
  msg.options.tau = 2.5f;
  msg.options.multi_kernel = false;

  wire::LoadModelMsg decoded;
  ASSERT_TRUE(
      wire::DecodeLoadModel(wire::EncodeLoadModel(msg), &decoded).ok());
  EXPECT_EQ(decoded.name, "prod");
  EXPECT_EQ(decoded.checkpoint_path, "/tmp/ck.cfpm");
  EXPECT_EQ(decoded.options.num_series, 5);
  EXPECT_EQ(decoded.options.window, 12);
  EXPECT_EQ(decoded.options.tau, 2.5f);
  EXPECT_FALSE(decoded.options.multi_kernel);
}

TEST(WireMessageTest, StatsResultRoundTrip) {
  wire::StatsResultMsg msg;
  msg.cache_hits = 10;
  msg.cache_misses = 20;
  msg.cache_expirations = 5;
  msg.batch_requests = 30;
  msg.batch_max = 7;
  msg.dedup_hits = 11;
  msg.dedup_in_flight = 2;
  msg.batch_in_flight_limit = 3;
  msg.batch_shape_buckets = 4;
  msg.server_connections = 3;
  wire::StatsResultMsg::Model model;
  model.name = "m";
  model.num_parameters = 1667;
  model.generation = 2;
  model.num_series = 3;
  model.window = 8;
  msg.models.push_back(model);

  wire::StatsResultMsg decoded;
  ASSERT_TRUE(
      wire::DecodeStatsResult(wire::EncodeStatsResult(msg), &decoded).ok());
  EXPECT_EQ(decoded.cache_hits, 10u);
  EXPECT_EQ(decoded.cache_expirations, 5u);
  EXPECT_EQ(decoded.batch_max, 7);
  EXPECT_EQ(decoded.dedup_hits, 11u);
  EXPECT_EQ(decoded.dedup_in_flight, 2u);
  EXPECT_EQ(decoded.batch_in_flight_limit, 3);
  EXPECT_EQ(decoded.batch_shape_buckets, 4);
  ASSERT_EQ(decoded.models.size(), 1u);
  EXPECT_EQ(decoded.models[0].name, "m");
  EXPECT_EQ(decoded.models[0].window, 8);
  EXPECT_TRUE(decoded.shards.empty());
}

TEST(WireMessageTest, StatsResultShardRowsRoundTrip) {
  wire::StatsResultMsg msg;
  msg.cache_hits = 3;
  wire::StatsResultMsg::Shard live;
  live.shard = 0;
  live.live = true;
  live.draining = false;
  live.routed = 100;
  live.restarts = 1;
  live.cache_hits = 40;
  live.cache_misses = 60;
  live.cache_size = 7;
  live.dedup_hits = 12;
  live.batch_batches = 55;
  wire::StatsResultMsg::Shard draining;
  draining.shard = 3;
  draining.live = false;
  draining.draining = true;
  draining.routed = 42;
  msg.shards = {live, draining};

  wire::StatsResultMsg decoded;
  ASSERT_TRUE(
      wire::DecodeStatsResult(wire::EncodeStatsResult(msg), &decoded).ok());
  ASSERT_EQ(decoded.shards.size(), 2u);
  EXPECT_EQ(decoded.shards[0].shard, 0u);
  EXPECT_TRUE(decoded.shards[0].live);
  EXPECT_FALSE(decoded.shards[0].draining);
  EXPECT_EQ(decoded.shards[0].routed, 100u);
  EXPECT_EQ(decoded.shards[0].restarts, 1u);
  EXPECT_EQ(decoded.shards[0].cache_hits, 40u);
  EXPECT_EQ(decoded.shards[0].cache_misses, 60u);
  EXPECT_EQ(decoded.shards[0].cache_size, 7u);
  EXPECT_EQ(decoded.shards[0].dedup_hits, 12u);
  EXPECT_EQ(decoded.shards[0].batch_batches, 55u);
  EXPECT_EQ(decoded.shards[1].shard, 3u);
  EXPECT_FALSE(decoded.shards[1].live);
  EXPECT_TRUE(decoded.shards[1].draining);
  EXPECT_EQ(decoded.shards[1].routed, 42u);
}

TEST(WireMessageTest, StatsResultRejectsReservedShardFlagBits) {
  wire::StatsResultMsg msg;
  wire::StatsResultMsg::Shard shard;
  shard.shard = 0;
  shard.live = true;
  msg.shards = {shard};
  std::vector<uint8_t> payload = wire::EncodeStatsResult(msg);
  // The shard row's flags byte sits 4 bytes into the 61-byte trailing row
  // (after its u32 shard index). Set a reserved bit; decode must reject.
  payload[payload.size() - 61 + 4] |= 0x80;
  wire::StatsResultMsg decoded;
  EXPECT_FALSE(wire::DecodeStatsResult(payload, &decoded).ok());
}

TEST(WireMessageTest, StatsResultRejectsHostileShardCount) {
  // A count claiming more 61-byte rows than bytes remain must fail fast on
  // the plausibility check, not attempt a giant reserve.
  wire::StatsResultMsg msg;
  std::vector<uint8_t> payload = wire::EncodeStatsResult(msg);
  // Trailing u32 shard count: overwrite 0 with a hostile value.
  payload[payload.size() - 4] = 0xff;
  payload[payload.size() - 3] = 0xff;
  payload[payload.size() - 2] = 0xff;
  payload[payload.size() - 1] = 0x7f;
  wire::StatsResultMsg decoded;
  EXPECT_FALSE(wire::DecodeStatsResult(payload, &decoded).ok());
}

// ---- Streaming messages (v2) ----------------------------------------------

TEST(WireMessageTest, StreamOpenRoundTrip) {
  wire::StreamOpenMsg msg;
  msg.stream = "sensors";
  msg.model = "prod";
  msg.window = 16;
  msg.stride = 4;
  msg.history = 128;
  msg.max_in_flight = 2;
  msg.max_reports = 64;
  msg.options.num_clusters = 3;
  msg.options.use_gradient = false;
  msg.drift_score_threshold = 0.5;
  msg.drift_flip_threshold = 0.25;
  msg.stability_window = 5;

  wire::StreamOpenMsg decoded;
  ASSERT_TRUE(
      wire::DecodeStreamOpen(wire::EncodeStreamOpen(msg), &decoded).ok());
  EXPECT_EQ(decoded.stream, "sensors");
  EXPECT_EQ(decoded.model, "prod");
  EXPECT_EQ(decoded.window, 16);
  EXPECT_EQ(decoded.stride, 4);
  EXPECT_EQ(decoded.history, 128);
  EXPECT_EQ(decoded.max_in_flight, 2u);
  EXPECT_EQ(decoded.max_reports, 64u);
  EXPECT_EQ(decoded.options.num_clusters, 3);
  EXPECT_FALSE(decoded.options.use_gradient);
  EXPECT_EQ(decoded.drift_score_threshold, 0.5);
  EXPECT_EQ(decoded.drift_flip_threshold, 0.25);
  EXPECT_EQ(decoded.stability_window, 5);
}

TEST(WireMessageTest, AppendSamplesRoundTripPreservesData) {
  wire::AppendSamplesMsg msg;
  msg.stream = "s";
  msg.samples =
      Tensor::FromVector(Shape{3, 2}, {1.f, -2.f, 3.5f, 0.f, 1e-8f, 4e6f});

  wire::AppendSamplesMsg decoded;
  ASSERT_TRUE(
      wire::DecodeAppendSamples(wire::EncodeAppendSamples(msg), &decoded)
          .ok());
  EXPECT_EQ(decoded.stream, "s");
  ASSERT_EQ(decoded.samples.dim(0), 3);
  ASSERT_EQ(decoded.samples.dim(1), 2);
  for (int64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(decoded.samples.data()[i], msg.samples.data()[i]);
  }
}

TEST(WireMessageTest, AppendSamplesRejectsTruncatedData) {
  wire::AppendSamplesMsg msg;
  msg.stream = "s";
  msg.samples = Tensor::FromVector(Shape{2, 2}, {1.f, 2.f, 3.f, 4.f});
  auto payload = wire::EncodeAppendSamples(msg);
  payload.resize(payload.size() - 4);  // lose the last float
  wire::AppendSamplesMsg decoded;
  EXPECT_FALSE(wire::DecodeAppendSamples(payload, &decoded).ok());
}

TEST(WireMessageTest, StreamReportRoundTripPreservesDriftFields) {
  wire::StreamReportMsg report;
  report.window_index = 41;
  report.window_start = 120;
  report.cache_hit = true;
  report.deduped = true;
  report.has_baseline = true;
  report.drifted = true;
  report.regime_change = true;
  report.batch_size = 3;
  report.latency_seconds = 0.0125;
  report.num_series = 3;
  report.edges.push_back({0, 1, 2, 0.75});
  report.edges.push_back({2, 2, 1, 0.5});
  report.consecutive_drifts = 4;
  report.edges_added = 1;
  report.edges_removed = 2;
  report.edges_kept = 1;
  report.delay_changes = 1;
  report.mean_abs_score_delta = 0.125;
  report.max_abs_score_delta = 0.5;
  report.jaccard = 0.25;
  report.added.push_back({0, 1, 2, 0.75});
  report.removed.push_back({1, 0, 3, 0.25});

  std::vector<wire::StreamReportMsg> decoded;
  ASSERT_TRUE(wire::DecodeStreamReportsResult(
                  wire::EncodeStreamReportsResult({report}), &decoded)
                  .ok());
  ASSERT_EQ(decoded.size(), 1u);
  const auto& got = decoded[0];
  EXPECT_EQ(got.window_index, 41u);
  EXPECT_EQ(got.window_start, 120);
  EXPECT_TRUE(got.cache_hit);
  EXPECT_TRUE(got.deduped);
  EXPECT_TRUE(got.has_baseline);
  EXPECT_TRUE(got.drifted);
  EXPECT_TRUE(got.regime_change);
  EXPECT_EQ(got.batch_size, 3);
  EXPECT_EQ(got.latency_seconds, 0.0125);
  ASSERT_EQ(got.edges.size(), 2u);
  EXPECT_EQ(got.edges[1].from, 2);
  EXPECT_EQ(got.edges[1].delay, 1);
  EXPECT_EQ(got.consecutive_drifts, 4);
  EXPECT_EQ(got.edges_added, 1);
  EXPECT_EQ(got.edges_removed, 2);
  EXPECT_EQ(got.edges_kept, 1);
  EXPECT_EQ(got.delay_changes, 1);
  EXPECT_EQ(got.mean_abs_score_delta, 0.125);
  EXPECT_EQ(got.max_abs_score_delta, 0.5);
  EXPECT_EQ(got.jaccard, 0.25);
  ASSERT_EQ(got.added.size(), 1u);
  ASSERT_EQ(got.removed.size(), 1u);
  EXPECT_EQ(got.removed[0].delay, 3);
}

TEST(WireMessageTest, StreamReportRejectsReservedFlagBits) {
  wire::StreamReportMsg report;
  report.num_series = 1;
  auto payload = wire::EncodeStreamReportsResult({report});
  // Payload layout: u32 count, u64 index, i64 start, then the flags byte.
  // Bit 4 became `deduped` in v3; bit 5 is the lowest still-reserved bit.
  payload[4 + 8 + 8] |= 0x20;
  std::vector<wire::StreamReportMsg> decoded;
  EXPECT_FALSE(wire::DecodeStreamReportsResult(payload, &decoded).ok());
}

TEST(WireMessageTest, StreamReportRejectsEdgeEndpointOutOfRange) {
  wire::StreamReportMsg report;
  report.num_series = 2;
  report.edges.push_back({0, 5, 0, 1.0});  // endpoint 5 out of [0, 2)
  auto payload = wire::EncodeStreamReportsResult({report});
  std::vector<wire::StreamReportMsg> decoded;
  EXPECT_FALSE(wire::DecodeStreamReportsResult(payload, &decoded).ok());
}

TEST(WireMessageTest, StreamReportsRequestRoundTrip) {
  wire::StreamReportsMsg msg;
  msg.stream = "sensors";
  msg.max_reports = 17;
  wire::StreamReportsMsg decoded;
  ASSERT_TRUE(
      wire::DecodeStreamReports(wire::EncodeStreamReports(msg), &decoded)
          .ok());
  EXPECT_EQ(decoded.stream, "sensors");
  EXPECT_EQ(decoded.max_reports, 17u);
}

TEST(WireMessageTest, StreamOpenOkAndAppendOkRoundTrip) {
  wire::StreamOpenOkMsg ok;
  ok.window = 8;
  ok.stride = 2;
  ok.history = 64;
  wire::StreamOpenOkMsg ok_decoded;
  ASSERT_TRUE(
      wire::DecodeStreamOpenOk(wire::EncodeStreamOpenOk(ok), &ok_decoded)
          .ok());
  EXPECT_EQ(ok_decoded.window, 8);
  EXPECT_EQ(ok_decoded.history, 64);

  wire::AppendSamplesOkMsg ack;
  ack.total_samples = 100;
  ack.windows_emitted = 47;
  ack.windows_dropped = 3;
  ack.windows_failed = 1;
  ack.pending = 2;
  ack.deduped_windows = 9;
  wire::AppendSamplesOkMsg ack_decoded;
  ASSERT_TRUE(wire::DecodeAppendSamplesOk(wire::EncodeAppendSamplesOk(ack),
                                          &ack_decoded)
                  .ok());
  EXPECT_EQ(ack_decoded.total_samples, 100u);
  EXPECT_EQ(ack_decoded.windows_emitted, 47u);
  EXPECT_EQ(ack_decoded.windows_dropped, 3u);
  EXPECT_EQ(ack_decoded.windows_failed, 1u);
  EXPECT_EQ(ack_decoded.pending, 2u);
  EXPECT_EQ(ack_decoded.deduped_windows, 9u);
}

TEST(WireMessageTest, MetricsResultRoundTrip) {
  wire::MetricsResultMsg msg;
  msg.text =
      "# TYPE serve_requests_total counter\nserve_requests_total 3\n";
  wire::HistogramSummaryMsg row;
  row.name = "serve_request_latency_seconds";
  row.count = 3;
  row.sum = 0.75;
  row.p50 = 0.2;
  row.p90 = 0.4;
  row.p99 = 0.5;
  msg.histograms.push_back(row);
  row.name = "kernel_seconds{kernel=\"matmul\"}";
  row.count = 12;
  msg.histograms.push_back(row);
  const auto payload = wire::EncodeMetricsResult(msg);
  wire::MetricsResultMsg decoded;
  ASSERT_TRUE(wire::DecodeMetricsResult(payload, &decoded).ok());
  EXPECT_EQ(decoded.text, msg.text);
  ASSERT_EQ(decoded.histograms.size(), 2u);
  EXPECT_EQ(decoded.histograms[0].name, "serve_request_latency_seconds");
  EXPECT_EQ(decoded.histograms[0].count, 3u);
  EXPECT_EQ(decoded.histograms[0].sum, 0.75);
  EXPECT_EQ(decoded.histograms[0].p50, 0.2);
  EXPECT_EQ(decoded.histograms[0].p90, 0.4);
  EXPECT_EQ(decoded.histograms[0].p99, 0.5);
  EXPECT_EQ(decoded.histograms[1].name, "kernel_seconds{kernel=\"matmul\"}");
  EXPECT_EQ(decoded.histograms[1].count, 12u);
}

TEST(WireMessageTest, MetricsResultRejectsHostileRowCount) {
  // Empty text, then a row count far beyond the remaining bytes: the
  // decoder must reject it before allocating anything.
  const std::vector<uint8_t> payload = {0x00, 0x00, 0x00, 0x00,
                                        0xff, 0xff, 0xff, 0xff};
  wire::MetricsResultMsg decoded;
  EXPECT_FALSE(wire::DecodeMetricsResult(payload, &decoded).ok());
}

TEST(WireMessageTest, EveryMetricsResultTruncationFails) {
  wire::MetricsResultMsg msg;
  msg.text = "x 1\n";
  wire::HistogramSummaryMsg row;
  row.name = "h_seconds";
  row.count = 2;
  row.sum = 1.0;
  msg.histograms.push_back(row);
  const auto payload = wire::EncodeMetricsResult(msg);
  for (size_t len = 0; len < payload.size(); ++len) {
    wire::MetricsResultMsg decoded;
    const std::vector<uint8_t> truncated(payload.begin(),
                                         payload.begin() + len);
    EXPECT_FALSE(wire::DecodeMetricsResult(truncated, &decoded).ok())
        << "truncation at " << len << " decoded";
  }
}

TEST(WireMessageTest, ErrorRoundTripPreservesCode) {
  const auto payload =
      wire::EncodeError(Status::NotFound("model 'x' is not registered"));
  wire::ErrorMsg msg;
  ASSERT_TRUE(wire::DecodeError(payload, &msg).ok());
  const Status st = wire::ErrorToStatus(msg);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_EQ(st.message(), "model 'x' is not registered");
}

TEST(WireMessageTest, TrailingBytesRejected) {
  auto payload = wire::EncodePing(7);
  payload.push_back(0);
  uint64_t token = 0;
  EXPECT_FALSE(wire::DecodePing(payload, &token).ok());
}

// ---- Loopback server/client ----------------------------------------------

/// A raw TCP connection speaking hand-crafted bytes, for tests the typed
/// WireClient cannot express (bad versions, corrupt frames, pipelining).
class RawConn {
 public:
  explicit RawConn(uint16_t port) {
    auto fd = TcpConnect("127.0.0.1", port);
    CF_CHECK(fd.ok()) << fd.status().ToString();
    fd_ = *fd;
  }
  ~RawConn() { TcpClose(fd_); }

  void Send(const std::vector<uint8_t>& bytes) {
    ASSERT_TRUE(SendAll(fd_, bytes.data(), bytes.size()).ok());
  }

  // Reads one frame; false on EOF/close.
  bool Recv(wire::Frame* frame) {
    uint8_t header[wire::kHeaderSize];
    if (!RecvAll(fd_, header, sizeof(header)).ok()) return false;
    wire::PayloadReader r(header + 8, 8);
    uint32_t length = 0, crc = 0;
    (void)r.U32(&length);
    (void)r.U32(&crc);
    frame->version = header[4];
    frame->type = static_cast<wire::MessageType>(header[5]);
    frame->payload.resize(length);
    if (length > 0 && !RecvAll(fd_, frame->payload.data(), length).ok()) {
      return false;
    }
    return Crc32(frame->payload.data(), length) == crc;
  }

  bool Eof() {
    uint8_t byte;
    return !RecvAll(fd_, &byte, 1).ok();
  }

 private:
  int fd_ = -1;
};

class WireLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_.Register("m", TinyModel()).ok());
    engine_ = std::make_unique<InferenceEngine>(&registry_);
    server_ = std::make_unique<WireServer>(engine_.get());
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
    ASSERT_TRUE(client_.Connect("127.0.0.1", server_->port()).ok());
  }

  void ExpectSameResult(const core::DetectionResult& a,
                        const core::DetectionResult& b) {
    ASSERT_EQ(a.scores.num_series(), b.scores.num_series());
    for (int i = 0; i < a.scores.num_series(); ++i) {
      for (int j = 0; j < a.scores.num_series(); ++j) {
        EXPECT_EQ(a.scores.at(i, j), b.scores.at(i, j));
        EXPECT_EQ(a.delays[static_cast<size_t>(i)][static_cast<size_t>(j)],
                  b.delays[static_cast<size_t>(i)][static_cast<size_t>(j)]);
      }
    }
    EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  }

  ModelRegistry registry_;
  std::unique_ptr<InferenceEngine> engine_;
  std::unique_ptr<WireServer> server_;
  WireClient client_;
};

TEST_F(WireLoopbackTest, PingEchoesToken) {
  const auto pong = client_.Ping(0xABCDEF0123456789ull);
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(*pong, 0xABCDEF0123456789ull);
}

TEST_F(WireLoopbackTest, DetectMatchesInProcessEngine) {
  const Tensor windows = RandomWindows(2, 42);
  const auto remote = client_.Detect("m", windows);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();

  // A cache-less engine over the same registry computes the reference.
  EngineOptions solo_opts;
  solo_opts.cache_capacity = 0;
  InferenceEngine solo(&registry_, solo_opts);
  DiscoveryRequest request;
  request.model = "m";
  request.windows = windows;
  const auto local = solo.Discover(std::move(request));
  ASSERT_TRUE(local.status.ok());
  ExpectSameResult(remote->result, *local.result);
}

TEST_F(WireLoopbackTest, RepeatDetectHitsServerCache) {
  const Tensor windows = RandomWindows(2, 43);
  const auto cold = client_.Detect("m", windows);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->cache_hit);
  const auto warm = client_.Detect("m", windows);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);
  ExpectSameResult(cold->result, warm->result);
}

TEST_F(WireLoopbackTest, UnknownModelAnswersNotFound) {
  const auto result = client_.Detect("nope", RandomWindows(1, 44));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  // The connection survives a request-level error.
  EXPECT_TRUE(client_.Ping(1).ok());
}

TEST_F(WireLoopbackTest, BadGeometryAnswersInvalidArgument) {
  Rng rng(4);
  const auto result =
      client_.Detect("m", Tensor::Randn(Shape{1, 2, 8}, &rng));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(WireLoopbackTest, DetectBatchMatchesIndividualDetects) {
  std::vector<Tensor> batches = {RandomWindows(2, 50), RandomWindows(1, 51),
                                 RandomWindows(3, 52)};
  const auto results = client_.DetectBatch("m", batches);
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 3u);
  for (size_t i = 0; i < batches.size(); ++i) {
    const auto single = client_.Detect("m", batches[i]);
    ASSERT_TRUE(single.ok());
    ExpectSameResult((*results)[static_cast<size_t>(i)].result,
                     single->result);
  }
}

TEST_F(WireLoopbackTest, DetectBatchWithUnknownModelFailsWhole) {
  const auto results =
      client_.DetectBatch("nope", {RandomWindows(1, 53), RandomWindows(1, 54)});
  ASSERT_FALSE(results.ok());
  EXPECT_EQ(results.status().code(), StatusCode::kNotFound);
}

TEST_F(WireLoopbackTest, StatsReportModelsAndTraffic) {
  ASSERT_TRUE(client_.Detect("m", RandomWindows(1, 55)).ok());
  const auto stats = client_.Stats();
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(stats->models.size(), 1u);
  EXPECT_EQ(stats->models[0].name, "m");
  EXPECT_EQ(stats->models[0].num_series, 3);
  EXPECT_EQ(stats->models[0].window, 8);
  EXPECT_GE(stats->batch_requests, 1u);
  EXPECT_GE(stats->server_frames, 2u);
  EXPECT_EQ(stats->server_connections, 1u);
}

TEST_F(WireLoopbackTest, LoadAndUnloadOverTheWire) {
  const std::string path = "wire_test_ck.cfpm";
  {
    auto model = TinyModel(21);
    ASSERT_TRUE(SaveParameters(*model, path).ok());
  }
  const auto loaded = client_.LoadModel("m2", path, TinyModelOptions());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GT(loaded->num_parameters, 0);
  EXPECT_GT(loaded->generation, 1u);

  const auto result = client_.Detect("m2", RandomWindows(1, 60));
  EXPECT_TRUE(result.ok()) << result.status().ToString();

  ASSERT_TRUE(client_.UnloadModel("m2").ok());
  const auto after = client_.Detect("m2", RandomWindows(1, 61));
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kNotFound);
  std::remove(path.c_str());
}

TEST_F(WireLoopbackTest, PipelinedFramesObserveEarlierLoadModel) {
  // LoadModel runs on a worker thread, but a Detect pipelined behind it on
  // the same connection must still see the loaded model: the server parks
  // the connection's later frames until the load's effects are visible
  // (per-connection effect order == per-connection response order).
  const std::string path = "wire_test_pipeline_ck.cfpm";
  {
    auto model = TinyModel(31);
    ASSERT_TRUE(SaveParameters(*model, path).ok());
  }
  wire::LoadModelMsg load;
  load.name = "m3";
  load.checkpoint_path = path;
  load.options = TinyModelOptions();
  wire::DetectMsg detect;
  detect.model = "m3";
  detect.windows = RandomWindows(1, 62);
  ASSERT_TRUE(client_.SendFrame(wire::MessageType::kLoadModel,
                                wire::EncodeLoadModel(load))
                  .ok());
  ASSERT_TRUE(client_.SendFrame(wire::MessageType::kDetect,
                                wire::EncodeDetect(detect))
                  .ok());
  // And an unload of the same name right behind: it must run *after* the
  // load (and after the detect was dispatched), never overtake it.
  ASSERT_TRUE(client_.SendFrame(wire::MessageType::kUnloadModel,
                                wire::EncodeUnloadModel("m3"))
                  .ok());

  auto first = client_.RecvFrame();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_EQ(first->type, wire::MessageType::kLoadModelOk);
  auto second = client_.RecvFrame();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  ASSERT_EQ(second->type, wire::MessageType::kDetectResult)
      << "pipelined Detect raced the off-thread LoadModel";
  auto third = client_.RecvFrame();
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ(third->type, wire::MessageType::kUnloadModelOk);
  std::remove(path.c_str());
}

TEST_F(WireLoopbackTest, AdminFramesCanBeDisabled) {
  WireServerOptions opts;
  opts.allow_admin = false;
  WireServer locked(engine_.get(), opts);
  ASSERT_TRUE(locked.Start().ok());
  WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", locked.port()).ok());
  const Status st = client.UnloadModel("m");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  // Queries still work.
  EXPECT_TRUE(client.Detect("m", RandomWindows(1, 62)).ok());
}

TEST_F(WireLoopbackTest, PipelinedDetectsAnswerInOrder) {
  // Two different queries sent back-to-back before reading any response:
  // responses must come back in request order.
  const Tensor first = RandomWindows(1, 70);
  const Tensor second = RandomWindows(2, 71);
  wire::DetectMsg msg;
  msg.model = "m";
  msg.windows = first;
  ASSERT_TRUE(client_
                  .SendFrame(wire::MessageType::kDetect,
                             wire::EncodeDetect(msg))
                  .ok());
  msg.windows = second;
  ASSERT_TRUE(client_
                  .SendFrame(wire::MessageType::kDetect,
                             wire::EncodeDetect(msg))
                  .ok());

  std::vector<wire::DetectResultMsg> responses;
  for (int i = 0; i < 2; ++i) {
    auto frame = client_.RecvFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_EQ(frame->type, wire::MessageType::kDetectResult);
    wire::DetectResultMsg result;
    ASSERT_TRUE(wire::DecodeDetectResult(frame->payload, &result).ok());
    responses.push_back(std::move(result));
  }
  // Order check: responses match the per-request reference results.
  EngineOptions solo_opts;
  solo_opts.cache_capacity = 0;
  InferenceEngine solo(&registry_, solo_opts);
  for (int i = 0; i < 2; ++i) {
    DiscoveryRequest request;
    request.model = "m";
    request.windows = i == 0 ? first : second;
    const auto expected = solo.Discover(std::move(request));
    ASSERT_TRUE(expected.status.ok());
    ExpectSameResult(responses[static_cast<size_t>(i)].result,
                     *expected.result);
  }
}

TEST_F(WireLoopbackTest, UnsupportedVersionAnswersErrorThenCloses) {
  RawConn raw(server_->port());
  auto bytes = wire::EncodeFrame(wire::MessageType::kPing, wire::EncodePing(1));
  bytes[4] = wire::kVersion + 1;  // future version
  raw.Send(bytes);
  wire::Frame frame;
  ASSERT_TRUE(raw.Recv(&frame));
  EXPECT_EQ(frame.type, wire::MessageType::kError);
  wire::ErrorMsg error;
  ASSERT_TRUE(wire::DecodeError(frame.payload, &error).ok());
  EXPECT_EQ(wire::ErrorToStatus(error).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(raw.Eof());
}

TEST_F(WireLoopbackTest, CorruptCrcAnswersErrorThenCloses) {
  RawConn raw(server_->port());
  auto bytes = wire::EncodeFrame(wire::MessageType::kPing, wire::EncodePing(1));
  bytes.back() ^= 0xFF;  // corrupt the payload; CRC no longer matches
  raw.Send(bytes);
  wire::Frame frame;
  ASSERT_TRUE(raw.Recv(&frame));
  EXPECT_EQ(frame.type, wire::MessageType::kError);
  wire::ErrorMsg error;
  ASSERT_TRUE(wire::DecodeError(frame.payload, &error).ok());
  EXPECT_NE(error.message.find("crc"), std::string::npos);
  EXPECT_TRUE(raw.Eof());
}

TEST_F(WireLoopbackTest, BadMagicClosesWithoutResponse) {
  RawConn raw(server_->port());
  raw.Send({'G', 'E', 'T', ' ', '/', ' ', 'H', 'T', 'T', 'P'});
  EXPECT_TRUE(raw.Eof());
}

TEST_F(WireLoopbackTest, ResponseTypedFrameFromClientIsRejected) {
  RawConn raw(server_->port());
  raw.Send(wire::EncodeFrame(wire::MessageType::kPong, wire::EncodePing(1)));
  wire::Frame frame;
  ASSERT_TRUE(raw.Recv(&frame));
  EXPECT_EQ(frame.type, wire::MessageType::kError);
  EXPECT_TRUE(raw.Eof());
}

TEST_F(WireLoopbackTest, ManyConnectionsShareOneEngine) {
  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      WireClient client;
      if (!client.Connect("127.0.0.1", server_->port()).ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < 3; ++i) {
        const auto result = client.Detect(
            "m", RandomWindows(1, static_cast<uint64_t>(c * 97 + i)));
        if (!result.ok()) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(engine_->batcher_stats().requests, 8u * 3u);
}

TEST_F(WireLoopbackTest, MetricsWithoutObservabilityAnswersPrecondition) {
  // The fixture's server runs without an Observability bundle: the v4
  // Metrics frame must answer a typed error, not crash or close.
  const auto metrics = client_.Metrics();
  ASSERT_FALSE(metrics.ok());
  EXPECT_EQ(metrics.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(client_.Ping(1).ok());  // connection survives
}

// ---- Observability over the wire ------------------------------------------

// The serving stack with one Observability bundle wired through the engine
// and server — the production shape of `serve_cli serve`.
class WireObsLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_.Register("m", TinyModel()).ok());
    EngineOptions eopts;
    eopts.obs = &obs_;
    engine_ = std::make_unique<InferenceEngine>(&registry_, eopts);
    WireServerOptions sopts;
    sopts.obs = &obs_;
    server_ = std::make_unique<WireServer>(engine_.get(), sopts);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(client_.Connect("127.0.0.1", server_->port()).ok());
  }

  obs::Observability obs_;
  ModelRegistry registry_;
  std::unique_ptr<InferenceEngine> engine_;
  std::unique_ptr<WireServer> server_;
  WireClient client_;
};

TEST_F(WireObsLoopbackTest, MetricsFrameExposesCoreSeries) {
  ASSERT_TRUE(client_.Detect("m", RandomWindows(2, 80)).ok());
  const auto metrics = client_.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();

  // The text exposition carries the engine counters (exact: one Detect),
  // the latency histograms and the server's wire counters.
  const std::string& text = metrics->text;
  EXPECT_NE(text.find("serve_requests_total 1\n"), std::string::npos) << text;
  EXPECT_NE(text.find("serve_batches_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_request_latency_seconds histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_request_latency_seconds_count 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("wire_connections_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("wire_frames_total"), std::string::npos);

  // The summary rows carry non-zero quantiles for the core histograms.
  bool saw_latency = false, saw_queue_wait = false, saw_occupancy = false;
  for (const auto& row : metrics->histograms) {
    if (row.name == "serve_request_latency_seconds") {
      saw_latency = true;
      EXPECT_EQ(row.count, 1u);
      EXPECT_GT(row.sum, 0.0);
      EXPECT_GT(row.p99, 0.0);
    }
    if (row.name == "serve_queue_wait_seconds") {
      saw_queue_wait = true;
      EXPECT_EQ(row.count, 1u);
    }
    if (row.name == "serve_batch_occupancy") {
      saw_occupancy = true;
      EXPECT_EQ(row.count, 1u);
      EXPECT_EQ(row.sum, 1.0);  // one batch of one request
    }
  }
  EXPECT_TRUE(saw_latency);
  EXPECT_TRUE(saw_queue_wait);
  EXPECT_TRUE(saw_occupancy);
}

TEST_F(WireObsLoopbackTest, DetectTraceCoversPipelineWithoutGaps) {
  ASSERT_TRUE(client_.Detect("m", RandomWindows(2, 81)).ok());

  // The completed trace is in the ring before the response frame is sent,
  // so it is visible as soon as Detect returns.
  const auto traces = obs_.traces().Snapshot();
  ASSERT_EQ(traces.size(), 1u);
  const obs::Trace& trace = *traces[0];
  EXPECT_GT(trace.id(), 0u);
  EXPECT_EQ(trace.leader_id(), 0u);

  const std::vector<obs::TraceSpan> spans = trace.spans();
  ASSERT_EQ(spans.size(), 4u);
  EXPECT_EQ(spans[0].name, "decode");
  EXPECT_EQ(spans[1].name, "enqueue");
  EXPECT_EQ(spans[2].name, "execute");
  EXPECT_EQ(spans[3].name, "encode");
  for (const auto& span : spans) {
    EXPECT_GE(span.end, span.start) << span.name;
  }
  // Mark-based spans: each span closes exactly where the next opens.
  for (size_t i = 0; i + 1 < spans.size(); ++i) {
    EXPECT_EQ(spans[i].end, spans[i + 1].start)
        << "gap after span " << spans[i].name;
  }

  // Per-phase detector timings were attached, kernels stayed out of the
  // trace (they are histogram-only), and the phase decomposition cannot
  // exceed the execute span it subdivides.
  const auto phases = trace.phases();
  ASSERT_FALSE(phases.empty());
  double phase_sum = 0;
  bool saw_forward = false;
  for (const auto& [name, seconds] : phases) {
    EXPECT_NE(name.rfind("kernel.", 0), 0u) << name;
    if (name == "forward") saw_forward = true;
    phase_sum += seconds;
  }
  EXPECT_TRUE(saw_forward);
  const double execute = spans[2].end - spans[2].start;
  EXPECT_LE(phase_sum, execute + 1e-9);
}

TEST_F(WireObsLoopbackTest, DedupFollowerTraceLinksLeader) {
  if (ThreadPool::Global().num_threads() <= 1) {
    GTEST_SKIP() << "needs a multi-worker pool to hold requests in flight";
  }
  WireClient follower;
  ASSERT_TRUE(follower.Connect("127.0.0.1", server_->port()).ok());

  wire::DetectMsg msg;
  msg.model = "m";
  msg.windows = RandomWindows(2, 82);
  const auto payload = wire::EncodeDetect(msg);

  // Freeze detection so the identical second request provably overlaps the
  // first in flight and parks as a dedup follower.
  testutil::PoolHostage hostage;
  ASSERT_TRUE(client_.SendFrame(wire::MessageType::kDetect, payload).ok());
  while (engine_->dedup_stats().in_flight < 1) std::this_thread::yield();
  ASSERT_TRUE(follower.SendFrame(wire::MessageType::kDetect, payload).ok());
  while (engine_->dedup_stats().hits < 1) std::this_thread::yield();
  hostage.Release();

  auto leader_frame = client_.RecvFrame();
  ASSERT_TRUE(leader_frame.ok()) << leader_frame.status().ToString();
  ASSERT_EQ(leader_frame->type, wire::MessageType::kDetectResult);
  auto follower_frame = follower.RecvFrame();
  ASSERT_TRUE(follower_frame.ok()) << follower_frame.status().ToString();
  ASSERT_EQ(follower_frame->type, wire::MessageType::kDetectResult);
  wire::DetectResultMsg leader_result, follower_result;
  ASSERT_TRUE(
      wire::DecodeDetectResult(leader_frame->payload, &leader_result).ok());
  ASSERT_TRUE(
      wire::DecodeDetectResult(follower_frame->payload, &follower_result)
          .ok());
  EXPECT_FALSE(leader_result.deduped);
  EXPECT_TRUE(follower_result.deduped);

  // Both traces completed; the follower's records a dedup_wait span (it
  // never executed) and links the leader's trace id.
  const auto traces = obs_.traces().Snapshot();
  ASSERT_EQ(traces.size(), 2u);
  const obs::Trace* leader_trace = nullptr;
  const obs::Trace* follower_trace = nullptr;
  for (const auto& trace : traces) {
    bool waited = false;
    for (const auto& span : trace->spans()) {
      if (span.name == "dedup_wait") waited = true;
    }
    (waited ? follower_trace : leader_trace) = trace.get();
  }
  ASSERT_NE(leader_trace, nullptr);
  ASSERT_NE(follower_trace, nullptr);
  EXPECT_EQ(leader_trace->leader_id(), 0u);
  EXPECT_EQ(follower_trace->leader_id(), leader_trace->id());
  EXPECT_EQ(obs_.metrics()
                .GetCounter("serve_dedup_followers_total")
                ->Value(),
            1u);
}

// ---- Flight recorder over the wire (v5 Dump) ------------------------------

TEST_F(WireLoopbackTest, DumpWithoutFlightRecorderAnswersPrecondition) {
  // The fixture's server runs without a flight recorder: the v5 Dump frame
  // must answer a typed error, not crash or close.
  const auto dump = client_.Dump();
  ASSERT_FALSE(dump.ok());
  EXPECT_EQ(dump.status().code(), StatusCode::kFailedPrecondition);
}

// Minimal structural validation of chrome Trace Event Format JSON: balanced
// braces/brackets outside strings, every event is a complete event
// ("ph":"X"), and the "ts" sequence is monotonically non-decreasing — the
// properties chrome://tracing and Perfetto rely on. Returns the number of
// events, or -1 on a violation (with a gtest failure naming it).
int ValidateChromeTraceJson(const std::string& json) {
  int depth = 0;
  bool in_string = false, escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
    } else if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
    } else if (c == '"') {
      in_string = true;
    } else if (c == '{' || c == '[') {
      ++depth;
    } else if (c == '}' || c == ']') {
      if (--depth < 0) break;
    }
  }
  if (depth != 0 || in_string) {
    ADD_FAILURE() << "unbalanced JSON structure";
    return -1;
  }

  int events = 0;
  for (size_t pos = json.find("\"ph\":"); pos != std::string::npos;
       pos = json.find("\"ph\":", pos + 1)) {
    ++events;
    if (json.compare(pos, 9, "\"ph\":\"X\",") != 0) {
      ADD_FAILURE() << "event phase is not a complete event at offset "
                    << pos;
      return -1;
    }
  }

  double last_ts = -1;
  for (size_t pos = json.find("\"ts\":"); pos != std::string::npos;
       pos = json.find("\"ts\":", pos + 1)) {
    const double ts = std::atof(json.c_str() + pos + 5);
    if (ts < last_ts) {
      ADD_FAILURE() << "ts regressed: " << ts << " after " << last_ts;
      return -1;
    }
    last_ts = ts;
  }
  return events;
}

// The full diagnostics stack — obs bundle + flight recorder — behind a
// live server, the production shape of `serve_cli serve --dump-dir`.
class WireDumpLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_.Register("m", TinyModel()).ok());
    EngineOptions eopts;
    eopts.obs = &obs_;
    engine_ = std::make_unique<InferenceEngine>(&registry_, eopts);
    recorder_ = std::make_unique<obs::FlightRecorder>(&obs_);
    recorder_->AddStateProvider("engine", [this] {
      return "requests=" +
             std::to_string(engine_->batcher_stats().requests) + "\n";
    });
    WireServerOptions sopts;
    sopts.obs = &obs_;
    sopts.flight_recorder = recorder_.get();
    server_ = std::make_unique<WireServer>(engine_.get(), sopts);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(client_.Connect("127.0.0.1", server_->port()).ok());
  }

  obs::Observability obs_;
  ModelRegistry registry_;
  std::unique_ptr<InferenceEngine> engine_;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::unique_ptr<WireServer> server_;
  WireClient client_;
};

TEST_F(WireDumpLoopbackTest, DumpFrameCarriesTheWholeBundle) {
  ASSERT_TRUE(client_.Detect("m", RandomWindows(2, 90)).ok());
  const auto dump = client_.Dump();
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();

  auto find = [&](const std::string& name) -> const wire::DumpFileMsg* {
    for (const auto& file : dump->files) {
      if (file.name == name) return &file;
    }
    return nullptr;
  };
  const auto* metrics = find("metrics.txt");
  ASSERT_NE(metrics, nullptr);
  EXPECT_NE(metrics->content.find("serve_requests_total 1\n"),
            std::string::npos)
      << metrics->content;
  const auto* state = find("state.txt");
  ASSERT_NE(state, nullptr);
  EXPECT_NE(state->content.find("== engine ==\nrequests=1\n"),
            std::string::npos)
      << state->content;
  const auto* traces = find("traces.txt");
  ASSERT_NE(traces, nullptr);
  EXPECT_NE(traces->content.find("decode"), std::string::npos)
      << traces->content;
  ASSERT_NE(find("logs.txt"), nullptr);
  ASSERT_NE(find("trace.json"), nullptr);
}

TEST_F(WireDumpLoopbackTest, ChromeTraceJsonIsSchemaValid) {
  // Two detects: distinct windows, so two traces (no cache hit collapse).
  ASSERT_TRUE(client_.Detect("m", RandomWindows(2, 91)).ok());
  ASSERT_TRUE(client_.Detect("m", RandomWindows(2, 92)).ok());
  const auto dump = client_.Dump();
  ASSERT_TRUE(dump.ok()) << dump.status().ToString();
  const wire::DumpFileMsg* trace_json = nullptr;
  for (const auto& file : dump->files) {
    if (file.name == "trace.json") trace_json = &file;
  }
  ASSERT_NE(trace_json, nullptr);

  // Two traces of four spans each: eight complete events, monotone ts.
  const int events = ValidateChromeTraceJson(trace_json->content);
  EXPECT_EQ(events, 8) << trace_json->content;
  EXPECT_NE(trace_json->content.find("\"displayTimeUnit\":\"ms\""),
            std::string::npos);
  EXPECT_NE(trace_json->content.find("\"forward_ms\":"), std::string::npos)
      << "execute span lost its phase decomposition";
}

TEST(ChromeTraceExportTest, EmptyRingRendersValidEmptyJson) {
  const std::string json = obs::RenderChromeTrace({});
  EXPECT_EQ(ValidateChromeTraceJson(json), 0);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
}

// ---- Profiling over the wire (v7) -----------------------------------------

TEST_F(WireLoopbackTest, ProfileWithoutProfilerAnswersPrecondition) {
  // The fixture's server runs without a profiler: the v7 Profile frame
  // must answer a typed error, not crash or close.
  const auto profile = client_.Profile(1);
  ASSERT_FALSE(profile.ok());
  EXPECT_EQ(profile.status().code(), StatusCode::kFailedPrecondition);
}

// A live server fronting a running sampling profiler — the production
// shape of `serve_cli serve` + `serve_cli profile --connect`.
class WireProfileLoopbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(registry_.Register("m", TinyModel()).ok());
    engine_ = std::make_unique<InferenceEngine>(&registry_);
    ASSERT_TRUE(profiler_.Start().ok());
    WireServerOptions sopts;
    sopts.profiler = &profiler_;
    server_ = std::make_unique<WireServer>(engine_.get(), sopts);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(client_.Connect("127.0.0.1", server_->port()).ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    ASSERT_TRUE(profiler_.Stop().ok());
  }

  ModelRegistry registry_;
  std::unique_ptr<InferenceEngine> engine_;
  obs::Profiler profiler_;
  std::unique_ptr<WireServer> server_;
  WireClient client_;
};

TEST_F(WireProfileLoopbackTest, ProfileFrameCapturesBurningThread) {
  // Pin a burner thread for the window so SIGPROF (process-CPU-time
  // driven) has cycles to land on regardless of machine speed.
  std::atomic<bool> stop{false};
  std::thread burner([&stop] {
    obs::RegisterProfilingThread("cf-wire-burner");
    volatile double sink = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (int i = 1; i < 2048; ++i) sink += 1.0 / i;
    }
  });
  const auto profile = client_.Profile(1);
  stop.store(true);
  burner.join();

  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_GT(profile->samples, 0u);
  EXPECT_NE(profile->folded.find("cf-wire-burner;"), std::string::npos)
      << profile->folded;
  // Folded lines end in a count; the chrome JSON is the same window.
  EXPECT_EQ(profile->folded.back(), '\n');
  EXPECT_NE(profile->json.find("\"displayTimeUnit\":\"ms\""),
            std::string::npos);
  EXPECT_NE(profile->json.find("cf-wire-burner"), std::string::npos);
}

TEST_F(WireProfileLoopbackTest, ProfileRejectsOutOfRangeSeconds) {
  const auto zero = client_.Profile(0);
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.status().code(), StatusCode::kInvalidArgument);
  const auto huge = client_.Profile(61);
  ASSERT_FALSE(huge.ok());
  EXPECT_EQ(huge.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(WireProfileLoopbackTest, DetectsStayLiveDuringProfileWindow) {
  // The profile window must not stall dispatch: a second connection's
  // Detect answers while the first connection's Profile is in flight.
  WireClient prof_client;
  ASSERT_TRUE(prof_client.Connect("127.0.0.1", server_->port()).ok());
  auto profile_future = std::async(std::launch::async, [&prof_client] {
    return prof_client.Profile(1);
  });
  // Give the server a moment to park the profile request on its worker.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const auto detect = client_.Detect("m", RandomWindows(2, 93));
  EXPECT_TRUE(detect.ok()) << detect.status().ToString();
  const auto profile = profile_future.get();
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
}

}  // namespace
}  // namespace serve
}  // namespace causalformer
