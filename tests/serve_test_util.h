#ifndef CAUSALFORMER_TESTS_SERVE_TEST_UTIL_H_
#define CAUSALFORMER_TESTS_SERVE_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "core/causality_transformer.h"
#include "core/detector.h"
#include "serve/engine_pool.h"
#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/thread_pool.h"

// Shared fixtures of the serving-layer tests (serve_test, serve_stress_test,
// stream_test, shard_fault_test): tiny models, the pool-hostage
// dispatch-timing lever, the FailpointShard kill/drain-mid-batch
// choreography, and the deterministic concurrency primitives (Barrier,
// ScriptedClock) the stress harness is built on.

namespace causalformer {
namespace serve {
namespace testutil {

inline core::ModelOptions TinyModelOptions(int64_t num_series = 3,
                                           int64_t window = 8) {
  core::ModelOptions opt;
  opt.num_series = num_series;
  opt.window = window;
  opt.d_model = 16;
  opt.d_qk = 16;
  opt.heads = 2;
  opt.d_ffn = 16;
  return opt;
}

inline std::unique_ptr<core::CausalityTransformer> TinyModel(
    uint64_t seed = 7) {
  Rng rng(seed);
  return std::make_unique<core::CausalityTransformer>(TinyModelOptions(),
                                                      &rng);
}

inline Tensor RandomWindows(int64_t b, uint64_t seed) {
  Rng rng(seed);
  return Tensor::Randn(Shape{b, 3, 8}, &rng);
}

inline void ExpectSameDetection(const core::DetectionResult& a,
                                const core::DetectionResult& b) {
  const int n = a.scores.num_series();
  ASSERT_EQ(b.scores.num_series(), n);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      EXPECT_EQ(a.scores.at(i, j), b.scores.at(i, j)) << i << "," << j;
      EXPECT_EQ(a.delays[i][j], b.delays[i][j]) << i << "," << j;
    }
  }
  EXPECT_EQ(a.graph.ToString(), b.graph.ToString());
}

// Parks every global ThreadPool worker until Release() (or destruction), so
// detection kernels cannot progress and engine submissions stay queued — the
// lever the batching, hot-swap and dedup tests use to control dispatch
// timing. Releasing in the destructor keeps workers from blocking forever on
// dead stack state when a test assertion fails mid-scope; the destructor also
// waits for every hostage to leave the wait before the primitives go away.
class PoolHostage {
 public:
  PoolHostage() : hostages_(ThreadPool::Global().num_threads()) {
    for (int i = 0; i < hostages_; ++i) {
      ThreadPool::Global().Schedule([this] {
        ++blocked_;
        {
          std::unique_lock<std::mutex> lock(mu_);
          cv_.wait(lock, [this] { return release_; });
        }
        ++exited_;
      });
    }
    while (blocked_.load() < hostages_) std::this_thread::yield();
  }

  ~PoolHostage() {
    Release();
    while (exited_.load() < hostages_) std::this_thread::yield();
  }

  void Release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      release_ = true;
    }
    cv_.notify_all();
  }

 private:
  const int hostages_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool release_ = false;
  std::atomic<int> blocked_{0};
  std::atomic<int> exited_{0};
};

// Fault-injection choreography for one EnginePool shard: wedge the shard
// mid-batch (a PoolHostage holds every detector kernel, so an executing
// batch cannot finish), then kill or drain it on a helper thread — both
// block inside the engine teardown until the kernels are released, which is
// exactly the window the fault tests assert in (followers parked, queue
// pending, ring already re-homed). Destruction releases the kernels and
// joins the helper, so a failing assertion mid-scene cannot hang the test.
class FailpointShard {
 public:
  FailpointShard(EnginePool* pool, size_t shard)
      : pool_(pool), shard_(shard),
        hostage_(std::make_unique<PoolHostage>()) {}

  ~FailpointShard() {
    ReleaseKernels();
    Join();
  }

  // Submits through the shard's pinned frontend and blocks until the shard
  // reports an executing batch — stuck on the hostaged kernels.
  std::future<DiscoveryResponse> SubmitStuck(DiscoveryRequest request) {
    auto future =
        pool_->shard_frontend(shard_)->SubmitAsync(std::move(request));
    WaitExecuting();
    return future;
  }

  // Spins until the shard's batcher reports at least one executing batch.
  void WaitExecuting() {
    while (pool_->shard_stats()[shard_].engine.batcher.active_batches < 1) {
      std::this_thread::yield();
    }
  }

  // Launches KillShard/DrainShard on the helper thread. It blocks in the
  // engine teardown (kill) or the quiesce poll (drain) until the kernels
  // are released; the ring re-homes the shard's keys immediately though —
  // spin on pool()->router().is_live(shard()) turning false to sequence.
  void KillAsync() {
    StartOp([this] { return pool_->KillShard(shard_); });
  }
  void DrainAsync() {
    StartOp([this] { return pool_->DrainShard(shard_); });
  }

  // Lets the wedged batch (and everything queued behind it) run.
  void ReleaseKernels() {
    if (hostage_ != nullptr) hostage_->Release();
  }

  // Waits for the pending kill/drain and returns its Status.
  Status Join() {
    if (op_.joinable()) op_.join();
    return status_;
  }

  EnginePool* pool() { return pool_; }
  size_t shard() const { return shard_; }

 private:
  void StartOp(std::function<Status()> fn) {
    ASSERT_FALSE(op_.joinable()) << "one kill/drain at a time";
    op_ = std::thread([this, fn = std::move(fn)] { status_ = fn(); });
  }

  EnginePool* pool_;
  const size_t shard_;
  std::unique_ptr<PoolHostage> hostage_;
  std::thread op_;
  Status status_;
};

// A reusable (generation-counted) thread barrier: Wait() blocks until
// `parties` threads have arrived, then releases them all. The stress harness
// uses it to line K submitter threads up on the same instant so their
// submissions genuinely race instead of trickling in.
class Barrier {
 public:
  explicit Barrier(int parties) : parties_(parties), waiting_(0) {}

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    const uint64_t generation = generation_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
      return;
    }
    cv_.wait(lock, [&] { return generation_ != generation; });
  }

 private:
  const int parties_;
  int waiting_;
  uint64_t generation_ = 0;
  std::mutex mu_;
  std::condition_variable cv_;
};

// A deterministic, thread-safe test clock: time stands still until the test
// advances it. Installed via ScoreCacheOptions/EngineOptions
// `cache_clock_for_testing`, it makes TTL expiry a scripted event instead of
// a wall-clock race — the stress harness uses it to force "cached result
// just expired, identical queries must coalesce in flight, not recompute K
// times".
class ScriptedClock {
 public:
  explicit ScriptedClock(double start = 0) : now_(start) {}

  double Now() const {
    std::lock_guard<std::mutex> lock(mu_);
    return now_;
  }

  void Advance(double seconds) {
    std::lock_guard<std::mutex> lock(mu_);
    now_ += seconds;
  }

  // The clock as the std::function the cache options expect. The returned
  // callable references this clock; keep it alive for the cache's lifetime.
  std::function<double()> fn() {
    return [this] { return Now(); };
  }

 private:
  mutable std::mutex mu_;
  double now_;
};

}  // namespace testutil
}  // namespace serve
}  // namespace causalformer

#endif  // CAUSALFORMER_TESTS_SERVE_TEST_UTIL_H_
