#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "core/detector.h"
#include "serve/engine_pool.h"
#include "serve/inference_engine.h"
#include "serve/inflight.h"
#include "serve/model_registry.h"
#include "serve/score_cache.h"
#include "serve_test_util.h"
#include "util/thread_pool.h"

// The serving-layer concurrency/stress harness: K threads hammer one
// InferenceEngine with identical and near-identical (epsilon-perturbed)
// queries while a detector call-counting hook proves the dedup invariant —
// detector invocations equal *unique* (model generation, window hash,
// options) keys, never submissions — and every follower receives
// bit-identical scores. The leader-error, engine-teardown and
// unload-while-parked fan-in paths are exercised explicitly. Timing is
// controlled, not raced: testutil::Barrier lines submitters up on one
// instant, testutil::PoolHostage freezes detection so submissions provably
// overlap in flight, and testutil::ScriptedClock makes TTL expiry a scripted
// event. Run under ThreadSanitizer in CI (the `tsan` job) with
// CF_NUM_THREADS=4.

namespace causalformer {
namespace serve {
namespace {

using testutil::Barrier;
using testutil::ExpectSameDetection;
using testutil::PoolHostage;
using testutil::RandomWindows;
using testutil::ScriptedClock;
using testutil::TinyModel;
using testutil::TinyModelOptions;

// Thread-safe recorder behind EngineOptions::detect_observer_for_testing:
// one count per key the detector actually computed.
class DetectCounter {
 public:
  std::function<void(const CacheKey&)> hook() {
    return [this](const CacheKey& key) {
      std::lock_guard<std::mutex> lock(mu_);
      ++total_;
      keys_.insert(KeyString(key));
    };
  }

  int total() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_;
  }

  size_t unique_keys() const {
    std::lock_guard<std::mutex> lock(mu_);
    return keys_.size();
  }

 private:
  static std::string KeyString(const CacheKey& key) {
    return key.model + "/" + std::to_string(key.generation) + "/" +
           std::to_string(key.windows.lo) + ":" +
           std::to_string(key.windows.hi) + "/" + key.options;
  }

  mutable std::mutex mu_;
  int total_ = 0;
  std::set<std::string> keys_;
};

// Spin until `predicate` holds (bounded); the harness uses it to await
// asynchronous counters without sleeping fixed amounts.
template <typename Pred>
bool SpinUntil(Pred predicate,
               std::chrono::milliseconds budget = std::chrono::seconds(10)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (!predicate()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

TEST(ServeStressTest, IdenticalConcurrentRequestsRunOnce) {
  if (ThreadPool::Global().num_threads() <= 1) {
    GTEST_SKIP() << "needs a multi-worker pool to hold requests in flight";
  }
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", TinyModel()).ok());
  DetectCounter counter;
  EngineOptions opts;
  opts.cache_capacity = 0;  // no cache: only in-flight dedup can coalesce
  opts.detect_observer_for_testing = counter.hook();
  InferenceEngine engine(&registry, opts);

  constexpr int kThreads = 8;
  const Tensor windows = RandomWindows(2, 900);

  // Freeze detection so every submission provably overlaps in flight, then
  // release K submitters through one barrier.
  PoolHostage hostage;
  Barrier barrier(kThreads);
  std::vector<std::future<DiscoveryResponse>> futures(kThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      DiscoveryRequest request;
      request.model = "m";
      request.windows = windows;
      barrier.Wait();
      futures[static_cast<size_t>(t)] = engine.SubmitAsync(std::move(request));
    });
  }
  for (auto& c : clients) c.join();

  // All K submissions are in: exactly one leader, K-1 parked followers.
  const auto parked = engine.dedup_stats();
  EXPECT_EQ(parked.leaders, 1u);
  EXPECT_EQ(parked.hits, static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(parked.in_flight, 1u);

  hostage.Release();
  std::vector<DiscoveryResponse> responses;
  for (auto& f : futures) responses.push_back(f.get());

  // The detector ran exactly once — one invocation, one unique key — and
  // every caller got the *same* shared result object: bit-identical scores
  // by construction (ExpectSameDetection double-checks the values).
  EXPECT_EQ(counter.total(), 1);
  EXPECT_EQ(counter.unique_keys(), 1u);
  int followers = 0;
  for (const auto& r : responses) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    ASSERT_NE(r.result, nullptr);
    EXPECT_EQ(r.result.get(), responses.front().result.get());
    ExpectSameDetection(*r.result, *responses.front().result);
    if (r.deduped) ++followers;
  }
  EXPECT_EQ(followers, kThreads - 1);

  // The engine-wide snapshot surfaces the same gauges the wire StatsResult
  // reports, and the table drained.
  const EngineStats stats = engine.stats();
  EXPECT_EQ(stats.dedup.hits, static_cast<uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.dedup.in_flight, 0u);
}

TEST(ServeStressTest, EpsilonPerturbedRequestsNeverCoalesce) {
  if (ThreadPool::Global().num_threads() <= 1) {
    GTEST_SKIP() << "needs a multi-worker pool to hold requests in flight";
  }
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", TinyModel()).ok());
  DetectCounter counter;
  EngineOptions opts;
  opts.cache_capacity = 0;
  opts.detect_observer_for_testing = counter.hook();
  InferenceEngine engine(&registry, opts);

  constexpr int kThreads = 6;
  const Tensor windows = RandomWindows(2, 901);

  // Thread t perturbs either its options epsilon or one window value by the
  // smallest representable step — work the detector must NOT coalesce.
  PoolHostage hostage;
  Barrier barrier(kThreads);
  std::vector<std::future<DiscoveryResponse>> futures(kThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      DiscoveryRequest request;
      request.model = "m";
      request.windows = windows.Clone();
      if (t % 2 == 0) {
        float epsilon = request.options.epsilon;
        for (int step = 0; step <= t; ++step) {
          epsilon = std::nextafterf(epsilon, 1.0f);
        }
        request.options.epsilon = epsilon;
      } else {
        float& cell = request.windows.data()[t];
        cell = std::nextafterf(cell, 2.0f * cell + 1.0f);
      }
      barrier.Wait();
      futures[static_cast<size_t>(t)] = engine.SubmitAsync(std::move(request));
    });
  }
  for (auto& c : clients) c.join();

  // Every perturbed request is its own leader; nothing parked on anything.
  EXPECT_EQ(engine.dedup_stats().leaders, static_cast<uint64_t>(kThreads));
  EXPECT_EQ(engine.dedup_stats().hits, 0u);

  hostage.Release();
  for (auto& f : futures) {
    const DiscoveryResponse r = f.get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_FALSE(r.deduped);
  }
  // K distinct keys, K distinct detector invocations.
  EXPECT_EQ(counter.total(), kThreads);
  EXPECT_EQ(counter.unique_keys(), static_cast<size_t>(kThreads));
}

// The leader-error fan-in path at the table level, fully deterministic: K
// followers park, the leader completes with an error, and every follower
// receives that same error (counted as failed fan-ins) — never a hang, never
// a broken promise.
TEST(ServeStressTest, FollowersFanInOnLeaderError) {
  InFlightTable table;
  CacheKey key{"m", {7, 9}, "o", 1};
  InFlightTicket leader = table.Join(key);
  ASSERT_TRUE(leader.leader);

  constexpr int kFollowers = 5;
  Barrier barrier(kFollowers + 1);
  std::vector<std::future<DiscoveryResponse>> futures(kFollowers);
  std::vector<std::thread> threads;
  for (int t = 0; t < kFollowers; ++t) {
    threads.emplace_back([&, t] {
      barrier.Wait();
      InFlightTicket ticket = table.Join(key);
      EXPECT_FALSE(ticket.leader);
      futures[static_cast<size_t>(t)] = std::move(ticket.follower);
    });
  }
  barrier.Wait();
  for (auto& t : threads) t.join();
  EXPECT_EQ(table.stats().hits, static_cast<uint64_t>(kFollowers));

  DiscoveryResponse failure;
  failure.status = Status::Internal("leader exploded");
  table.Complete(leader.entry, failure);
  // Completion is idempotent: a second resolve must not double-fan.
  table.Complete(leader.entry, failure);

  for (auto& f : futures) {
    const DiscoveryResponse r = f.get();
    EXPECT_EQ(r.status.code(), StatusCode::kInternal);
    EXPECT_TRUE(r.deduped);
  }
  EXPECT_EQ(table.stats().failed_fanins, static_cast<uint64_t>(kFollowers));
  EXPECT_EQ(table.stats().in_flight, 0u);
}

// The leader-cancelled path end to end: the engine shuts down while the
// leader is still queued behind a stuck batch and K followers are parked on
// it. Every caller — leader and followers alike — must resolve with the same
// deterministic shutdown error; nobody hangs on a dead leader.
TEST(ServeStressTest, EngineTeardownFailsParkedFollowersDeterministically) {
  if (ThreadPool::Global().num_threads() <= 1) {
    GTEST_SKIP() << "needs a multi-worker pool to hold requests in flight";
  }
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", TinyModel()).ok());
  EngineOptions opts;
  opts.cache_capacity = 0;
  opts.batcher.max_in_flight_batches = 1;  // one stuck batch blocks the queue
  auto engine = std::make_unique<InferenceEngine>(&registry, opts);

  PoolHostage hostage;
  // Occupy the sole executor with an unrelated query, stuck on the pool.
  DiscoveryRequest occupier;
  occupier.model = "m";
  occupier.windows = RandomWindows(1, 910);
  auto occupier_future = engine->SubmitAsync(std::move(occupier));
  ASSERT_TRUE(SpinUntil([&] { return engine->batcher_stats().batches == 1; }));

  // The leader queues behind it; followers park on the leader.
  constexpr int kFollowers = 4;
  const Tensor windows = RandomWindows(2, 911);
  std::vector<std::future<DiscoveryResponse>> futures;
  for (int t = 0; t < kFollowers + 1; ++t) {
    DiscoveryRequest request;
    request.model = "m";
    request.windows = windows;
    futures.push_back(engine->SubmitAsync(std::move(request)));
  }
  EXPECT_EQ(engine->dedup_stats().hits, static_cast<uint64_t>(kFollowers));

  // Tear the engine down on a side thread: its batcher marks shutdown and
  // orphans the queued leader immediately, then blocks joining the stuck
  // executor until the hostage releases. The sleep biases the race heavily
  // toward the orphan path, but on a crawling host (TSan CI) the executor
  // may still win and run the leader's batch — so the hard assertion is
  // the consistency contract, not which path won: nobody hangs, and the
  // leader and every parked follower observe the *same* outcome.
  std::thread teardown([&] { engine.reset(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  hostage.Release();
  teardown.join();

  // The occupier was mid-execution and completes normally.
  EXPECT_TRUE(occupier_future.get().status.ok());
  std::vector<DiscoveryResponse> responses;
  for (auto& f : futures) responses.push_back(f.get());  // must not hang
  for (const auto& r : responses) {
    EXPECT_EQ(r.status.code(), responses.front().status.code())
        << r.status.ToString();
    if (r.status.ok()) {
      // Executor won the race: everyone shares the leader's result.
      EXPECT_EQ(r.result.get(), responses.front().result.get());
    } else {
      // Orphan path (the overwhelmingly common case): the deterministic
      // shutdown rejection, fanned to every caller.
      EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition)
          << r.status.ToString();
    }
  }
}

// The unload-while-parked path: followers park on a leader pinned to model
// generation G; the model is hot-swapped to a different architecture while
// everything is still queued. The leader runs on the pinned handle, and the
// followers fan in on that pinned result — same 3-series scores, no
// NotFound, no geometry abort against the 5-series successor.
TEST(ServeStressTest, UnloadWhileParkedFollowersGetPinnedModelResult) {
  if (ThreadPool::Global().num_threads() <= 1) {
    GTEST_SKIP() << "needs a multi-worker pool to hold requests in flight";
  }
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", TinyModel()).ok());
  DetectCounter counter;
  EngineOptions opts;
  opts.cache_capacity = 0;
  opts.detect_observer_for_testing = counter.hook();
  InferenceEngine engine(&registry, opts);

  PoolHostage hostage;
  constexpr int kCallers = 5;
  const Tensor windows = RandomWindows(2, 912);
  std::vector<std::future<DiscoveryResponse>> futures;
  for (int t = 0; t < kCallers; ++t) {
    DiscoveryRequest request;
    request.model = "m";
    request.windows = windows;
    futures.push_back(engine.SubmitAsync(std::move(request)));
  }
  EXPECT_EQ(engine.dedup_stats().hits, static_cast<uint64_t>(kCallers - 1));

  // Swap "m" to a different architecture while leader + followers are
  // parked/queued.
  ASSERT_TRUE(engine.UnloadModel("m").ok());
  Rng rng(13);
  ASSERT_TRUE(registry
                  .Register("m", std::make_unique<core::CausalityTransformer>(
                                     TinyModelOptions(5, 12), &rng))
                  .ok());
  hostage.Release();

  std::vector<DiscoveryResponse> responses;
  for (auto& f : futures) responses.push_back(f.get());
  for (const auto& r : responses) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.result->scores.num_series(), 3);
    EXPECT_EQ(r.result.get(), responses.front().result.get());
  }
  EXPECT_EQ(counter.total(), 1);
}

// ScriptedClock-driven TTL: a cached result that just expired must NOT make
// K identical queries recompute K times — the first re-query leads, the rest
// coalesce in flight. Detector invocations stay at exactly two (initial fill
// + one re-lead).
TEST(ServeStressTest, ExpiredCacheEntryRefillsThroughDedupOnce) {
  if (ThreadPool::Global().num_threads() <= 1) {
    GTEST_SKIP() << "needs a multi-worker pool to hold requests in flight";
  }
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", TinyModel()).ok());
  ScriptedClock clock(100.0);
  DetectCounter counter;
  EngineOptions opts;
  opts.cache_capacity = 16;
  opts.cache_ttl_seconds = 10.0;
  opts.cache_clock_for_testing = clock.fn();
  opts.detect_observer_for_testing = counter.hook();
  InferenceEngine engine(&registry, opts);

  DiscoveryRequest request;
  request.model = "m";
  request.windows = RandomWindows(2, 913);
  ASSERT_TRUE(engine.Discover(request).status.ok());
  EXPECT_EQ(counter.total(), 1);
  EXPECT_TRUE(engine.Discover(request).cache_hit);  // young entry: cached

  clock.Advance(11.0);  // scripted expiry: the entry is now stale

  constexpr int kThreads = 6;
  PoolHostage hostage;
  Barrier barrier(kThreads);
  std::vector<std::future<DiscoveryResponse>> futures(kThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      DiscoveryRequest copy = request;
      barrier.Wait();
      futures[static_cast<size_t>(t)] = engine.SubmitAsync(std::move(copy));
    });
  }
  for (auto& c : clients) c.join();
  hostage.Release();
  for (auto& f : futures) ASSERT_TRUE(f.get().status.ok());

  // One expiry-triggered recompute total, not one per caller.
  EXPECT_EQ(counter.total(), 2);
  EXPECT_EQ(engine.cache_stats().expirations, 1u);
  EXPECT_EQ(engine.dedup_stats().hits, static_cast<uint64_t>(kThreads - 1));
}

// Shape-bucketed batching: requests with two different detector-option sets
// arrive interleaved while the sole executor is stuck. Each option set must
// coalesce into one homogeneous full batch — riders join across the
// interleaving, which single-queue head-grouping could only do by scanning
// past incompatible traffic.
TEST(ServeStressTest, InterleavedOptionSetsFormHomogeneousFullBatches) {
  if (ThreadPool::Global().num_threads() <= 1) {
    GTEST_SKIP() << "needs a multi-worker pool to hold requests in flight";
  }
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", TinyModel()).ok());
  EngineOptions opts;
  opts.cache_capacity = 0;
  opts.batcher.max_in_flight_batches = 1;
  InferenceEngine engine(&registry, opts);

  PoolHostage hostage;
  DiscoveryRequest occupier;
  occupier.model = "m";
  occupier.windows = RandomWindows(1, 920);
  auto occupier_future = engine.SubmitAsync(std::move(occupier));
  ASSERT_TRUE(SpinUntil([&] { return engine.batcher_stats().batches == 1; }));

  // 4 requests per option set, submitted alternating A, B, A, B, ...
  constexpr int kPerSet = 4;
  std::vector<std::future<DiscoveryResponse>> set_a;
  std::vector<std::future<DiscoveryResponse>> set_b;
  for (int i = 0; i < kPerSet; ++i) {
    DiscoveryRequest a;
    a.model = "m";
    a.windows = RandomWindows(2, 921 + static_cast<uint64_t>(i));
    set_a.push_back(engine.SubmitAsync(std::move(a)));

    DiscoveryRequest b;
    b.model = "m";
    b.windows = RandomWindows(2, 931 + static_cast<uint64_t>(i));
    b.options.num_clusters = 3;  // different options: must never share a batch
    set_b.push_back(engine.SubmitAsync(std::move(b)));
  }
  // Two pending shape buckets while everything is parked behind the
  // occupier.
  EXPECT_EQ(engine.batcher_stats().shape_buckets, 2);

  hostage.Release();
  for (auto& f : set_a) {
    const DiscoveryResponse r = f.get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.batch_size, kPerSet);  // A rode as one homogeneous batch
  }
  for (auto& f : set_b) {
    const DiscoveryResponse r = f.get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_EQ(r.batch_size, kPerSet);  // so did B
  }
  EXPECT_TRUE(occupier_future.get().status.ok());
  EXPECT_EQ(engine.batcher_stats().shape_buckets, 0);
}

// Adaptive admission at the MicroBatcher level, with a hand-driven executor:
// consecutive sparse (size-1) dispatches shrink the limit to the floor;
// a full batch grows it back. Deterministic — the executor only proceeds
// when the test says so.
TEST(ServeStressTest, AdaptiveAdmissionTracksBatchOccupancy) {
  std::mutex mu;
  std::condition_variable cv;
  int release_budget = 0;
  const auto release_one = [&] {
    {
      std::lock_guard<std::mutex> lock(mu);
      ++release_budget;
    }
    cv.notify_all();
  };

  BatcherOptions opts;
  opts.max_batch_requests = 4;
  opts.max_in_flight_batches = 3;
  opts.min_in_flight_batches = 1;
  opts.adaptive_in_flight = true;
  std::atomic<uint64_t> executed{0};
  MicroBatcher batcher(opts, [&](std::vector<BatchItem> items) {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release_budget > 0; });
      --release_budget;
    }
    for (auto& item : items) {
      DiscoveryResponse response;
      response.batch_size = static_cast<int>(items.size());
      item.Resolve(std::move(response));
    }
    ++executed;
  });

  const auto submit_one = [&](uint64_t seed) {
    DiscoveryRequest request;
    request.model = "m";
    request.windows = RandomWindows(1, seed);
    return batcher.Submit(std::move(request), CacheKey{}, nullptr);
  };

  // Admission opens at the ceiling.
  EXPECT_EQ(batcher.stats().in_flight_limit, 3);

  // Two lone dispatches (occupancy 1/4 each) shrink 3 -> 2 -> 1.
  for (int i = 0; i < 2; ++i) {
    auto future = submit_one(940 + static_cast<uint64_t>(i));
    release_one();
    ASSERT_TRUE(future.get().status.ok());
  }
  EXPECT_EQ(batcher.stats().in_flight_limit, 1);
  EXPECT_EQ(batcher.stats().limit_shrinks, 2u);

  // Park one batch in the executor; admission 1 means the next submissions
  // pile up instead of dispatching to the idle peer executors...
  auto parked = submit_one(950);
  ASSERT_TRUE(SpinUntil([&] { return batcher.stats().batches == 3u; }));
  std::vector<std::future<DiscoveryResponse>> burst;
  for (int i = 0; i < 4; ++i) {
    burst.push_back(submit_one(951 + static_cast<uint64_t>(i)));
  }
  EXPECT_EQ(batcher.stats().batches, 3u);  // nothing else dispatched

  // ...and when the parked batch finishes, they ride as one full batch whose
  // occupancy (4/4) grows the limit again.
  release_one();  // the parked singleton
  release_one();  // the coalesced burst
  ASSERT_TRUE(parked.get().status.ok());
  for (auto& f : burst) {
    const DiscoveryResponse r = f.get();
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.batch_size, 4);
  }
  // Four executions in total: two singles, the parked singleton, the burst.
  ASSERT_TRUE(SpinUntil([&] { return executed.load() == 4u; }));
  EXPECT_EQ(batcher.stats().in_flight_limit, 2);
  EXPECT_GE(batcher.stats().limit_grows, 1u);
}

// Distinct shapes can never coalesce, so adaptive admission must not
// serialize them: once a second shape bucket has pending work, the limit
// is floored at one executor per bucket and climbs back even though every
// batch is sparse.
TEST(ServeStressTest, AdmissionNeverShrinksBelowDistinctPendingShapes) {
  std::mutex mu;
  std::condition_variable cv;
  int release_budget = 0;
  const auto release_one = [&] {
    {
      std::lock_guard<std::mutex> lock(mu);
      ++release_budget;
    }
    cv.notify_all();
  };

  BatcherOptions opts;
  opts.max_batch_requests = 4;
  opts.max_in_flight_batches = 2;
  opts.min_in_flight_batches = 1;
  MicroBatcher batcher(opts, [&](std::vector<BatchItem> items) {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release_budget > 0; });
      --release_budget;
    }
    for (auto& item : items) item.Resolve(DiscoveryResponse{});
  });

  // Distinct options strings put the two flows in distinct shape buckets.
  const auto submit_shape = [&](const std::string& options, uint64_t seed) {
    DiscoveryRequest request;
    request.model = "m";
    request.windows = RandomWindows(1, seed);
    CacheKey key;
    key.model = "m";
    key.options = options;
    return batcher.Submit(std::move(request), std::move(key), nullptr);
  };

  // A lone sparse dispatch with nothing else pending shrinks 2 -> 1.
  {
    auto future = submit_shape("A", 980);
    release_one();
    ASSERT_TRUE(future.get().status.ok());
  }
  EXPECT_EQ(batcher.stats().in_flight_limit, 1);

  // Park one shape-A batch; queue shape B and more A behind it.
  auto parked = submit_shape("A", 981);
  ASSERT_TRUE(SpinUntil([&] { return batcher.stats().batches == 2u; }));
  auto b_future = submit_shape("B", 982);
  auto a_future = submit_shape("A", 983);
  EXPECT_EQ(batcher.stats().shape_buckets, 2);

  // Completing the parked batch lets the next dispatch observe a second
  // pending bucket: the floor raises admission back to 2, so both shapes'
  // batches dispatch concurrently — batches reaches 4 while both executors
  // are still parked in the execute hook. (Without the floor, admission
  // would stay at 1 and the A batch could never dispatch before B's
  // executor is released, so this spin would time out.)
  release_one();
  ASSERT_TRUE(SpinUntil([&] { return batcher.stats().batches == 4u; }));
  EXPECT_GE(batcher.stats().limit_grows, 1u);
  release_one();
  release_one();
  ASSERT_TRUE(parked.get().status.ok());
  ASSERT_TRUE(b_future.get().status.ok());
  ASSERT_TRUE(a_future.get().status.ok());
}

// A batch full by the summed-window budget is a *full* batch even when its
// request count is far below max_batch_requests: occupancy must read the
// binding cap, so windows-saturated dispatches grow admission rather than
// shrink it.
TEST(ServeStressTest, WindowsSaturatedBatchesCountAsFullOccupancy) {
  std::mutex mu;
  std::condition_variable cv;
  int release_budget = 0;
  const auto release_one = [&] {
    {
      std::lock_guard<std::mutex> lock(mu);
      ++release_budget;
    }
    cv.notify_all();
  };

  BatcherOptions opts;
  opts.max_batch_requests = 8;
  opts.max_batch_windows = 4;  // two B=2 requests saturate the window budget
  opts.max_in_flight_batches = 3;
  opts.min_in_flight_batches = 1;
  MicroBatcher batcher(opts, [&](std::vector<BatchItem> items) {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release_budget > 0; });
      --release_budget;
    }
    for (auto& item : items) {
      DiscoveryResponse response;
      response.batch_size = static_cast<int>(items.size());
      item.Resolve(std::move(response));
    }
  });

  const auto submit = [&](int64_t b, uint64_t seed) {
    DiscoveryRequest request;
    request.model = "m";
    request.windows = RandomWindows(b, seed);
    return batcher.Submit(std::move(request), CacheKey{}, nullptr);
  };

  // Two lone single-window dispatches (occupancy 1/8 vs 1/4) shrink 3 -> 1.
  for (int i = 0; i < 2; ++i) {
    auto future = submit(1, 990 + static_cast<uint64_t>(i));
    release_one();
    ASSERT_TRUE(future.get().status.ok());
  }
  EXPECT_EQ(batcher.stats().in_flight_limit, 1);

  // Park a batch, queue two 2-window requests behind it; their combined
  // dispatch hits max_batch_windows exactly.
  auto parked = submit(1, 992);
  ASSERT_TRUE(SpinUntil([&] { return batcher.stats().batches == 3u; }));
  auto w1 = submit(2, 993);
  auto w2 = submit(2, 994);
  release_one();
  release_one();
  ASSERT_TRUE(parked.get().status.ok());
  const DiscoveryResponse r1 = w1.get();
  const DiscoveryResponse r2 = w2.get();
  ASSERT_TRUE(r1.status.ok());
  ASSERT_TRUE(r2.status.ok());
  EXPECT_EQ(r1.batch_size, 2);  // both rode one windows-saturated batch
  EXPECT_EQ(r2.batch_size, 2);
  // That batch read as full (4/4 windows), not sparse (2/8 requests).
  EXPECT_EQ(batcher.stats().in_flight_limit, 2);
  EXPECT_EQ(batcher.stats().limit_shrinks, 2u);
}

// Mixed identical/perturbed sustained load: K threads × R rounds, half the
// submissions duplicates of a shared hot window, half unique per (thread,
// round). The invariant that matters under load: detector invocations ==
// unique keys, and every response carries the right scores for *its* window
// (spot-checked against a fresh engine).
TEST(ServeStressTest, SustainedMixedLoadComputesEachUniqueKeyOnce) {
  if (ThreadPool::Global().num_threads() <= 1) {
    GTEST_SKIP() << "needs a multi-worker pool to hold requests in flight";
  }
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", TinyModel()).ok());
  DetectCounter counter;
  EngineOptions opts;
  opts.cache_capacity = 0;  // dedup only; no cache assistance
  opts.detect_observer_for_testing = counter.hook();
  InferenceEngine engine(&registry, opts);

  constexpr int kThreads = 4;
  constexpr int kRounds = 6;
  const Tensor hot = RandomWindows(2, 960);

  PoolHostage hostage;
  Barrier barrier(kThreads);
  std::vector<std::vector<std::future<DiscoveryResponse>>> futures(kThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      barrier.Wait();
      for (int round = 0; round < kRounds; ++round) {
        DiscoveryRequest request;
        request.model = "m";
        request.windows =
            (round % 2 == 0)
                ? hot
                : RandomWindows(2, 961 + static_cast<uint64_t>(t * kRounds +
                                                               round));
        futures[static_cast<size_t>(t)].push_back(
            engine.SubmitAsync(std::move(request)));
      }
    });
  }
  for (auto& c : clients) c.join();
  hostage.Release();

  std::shared_ptr<const core::DetectionResult> hot_result;
  for (int t = 0; t < kThreads; ++t) {
    for (int round = 0; round < kRounds; ++round) {
      const DiscoveryResponse r =
          futures[static_cast<size_t>(t)][static_cast<size_t>(round)].get();
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      if (round % 2 == 0) {
        // Every duplicate of the hot window shares one result object.
        if (hot_result == nullptr) {
          hot_result = r.result;
        } else {
          EXPECT_EQ(r.result.get(), hot_result.get());
        }
      }
    }
  }

  // Unique keys: the hot window + one per (thread, odd round).
  const int unique =
      1 + kThreads * (kRounds / 2);
  EXPECT_EQ(counter.total(), unique);
  EXPECT_EQ(counter.unique_keys(), static_cast<size_t>(unique));
  EXPECT_EQ(engine.dedup_stats().hits,
            static_cast<uint64_t>(kThreads * ((kRounds + 1) / 2) - 1));

  // Spot-check the hot window's scores against an independent engine.
  ModelRegistry fresh_registry;
  ASSERT_TRUE(fresh_registry.Register("m", TinyModel()).ok());
  InferenceEngine fresh(&fresh_registry);
  DiscoveryRequest check;
  check.model = "m";
  check.windows = hot;
  const DiscoveryResponse expected = fresh.Discover(std::move(check));
  ASSERT_TRUE(expected.status.ok());
  ExpectSameDetection(*hot_result, *expected.result);
}

// The sharded pool under the mixed identical/unique load: the dedup
// invariant must survive sharding *because* routing follows the full cache
// key — identical keys co-locate on one shard, whose in-flight table
// coalesces them exactly as an unsharded engine would. Proven two ways:
// globally (detector invocations == unique keys) and per shard (each
// shard's dedup leader count == the unique keys the ring assigns it), then
// the hot window's scores are checked bit-identical against an unsharded
// single-engine oracle.
TEST(ServeStressTest, ShardedPoolDedupsPerShardAndMatchesSingleEngineOracle) {
  if (ThreadPool::Global().num_threads() <= 1) {
    GTEST_SKIP() << "needs a multi-worker pool to hold requests in flight";
  }
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", TinyModel()).ok());
  DetectCounter counter;
  std::mutex keys_mu;
  std::vector<CacheKey> computed_keys;
  EnginePoolOptions popts;
  popts.num_shards = 4;
  popts.engine.cache_capacity = 0;  // dedup only; no cache assistance
  popts.engine.detect_observer_for_testing =
      [&, hook = counter.hook()](const CacheKey& key) {
        hook(key);
        std::lock_guard<std::mutex> lock(keys_mu);
        computed_keys.push_back(key);
      };
  EnginePool pool(&registry, popts);

  constexpr int kThreads = 4;
  constexpr int kRounds = 6;
  const Tensor hot = RandomWindows(2, 975);

  PoolHostage hostage;
  Barrier barrier(kThreads);
  std::vector<std::vector<std::future<DiscoveryResponse>>> futures(kThreads);
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      barrier.Wait();
      for (int round = 0; round < kRounds; ++round) {
        DiscoveryRequest request;
        request.model = "m";
        request.windows =
            (round % 2 == 0)
                ? hot
                : RandomWindows(2, 976 + static_cast<uint64_t>(t * kRounds +
                                                               round));
        futures[static_cast<size_t>(t)].push_back(
            pool.SubmitAsync(std::move(request)));
      }
    });
  }
  for (auto& c : clients) c.join();
  hostage.Release();

  std::shared_ptr<const core::DetectionResult> hot_result;
  for (int t = 0; t < kThreads; ++t) {
    for (int round = 0; round < kRounds; ++round) {
      const DiscoveryResponse r =
          futures[static_cast<size_t>(t)][static_cast<size_t>(round)].get();
      ASSERT_TRUE(r.status.ok()) << r.status.ToString();
      if (round % 2 == 0) {
        // Duplicates of the hot window share ONE result object: they all
        // landed on the hot key's shard and coalesced there.
        if (hot_result == nullptr) {
          hot_result = r.result;
        } else {
          EXPECT_EQ(r.result.get(), hot_result.get());
        }
      }
    }
  }

  // Global invariant, exactly as in the unsharded run above.
  const int unique = 1 + kThreads * (kRounds / 2);
  EXPECT_EQ(counter.total(), unique);
  EXPECT_EQ(counter.unique_keys(), static_cast<size_t>(unique));

  // Per-shard invariant: a shard led exactly one in-flight computation per
  // unique key the ring routed to it, and the rows add up to the whole —
  // nothing computed twice, nothing computed on the wrong shard.
  std::vector<uint64_t> expected_leaders(popts.num_shards, 0);
  {
    std::lock_guard<std::mutex> lock(keys_mu);
    for (const CacheKey& key : computed_keys) {
      ++expected_leaders[pool.router().RouteKey(key)];
    }
  }
  const auto rows = pool.shard_stats();
  uint64_t total_routed = 0;
  for (size_t s = 0; s < rows.size(); ++s) {
    EXPECT_EQ(rows[s].engine.dedup.leaders, expected_leaders[s])
        << "shard " << s;
    EXPECT_EQ(rows[s].engine.dedup.in_flight, 0u) << "shard " << s;
    total_routed += rows[s].routed;
  }
  EXPECT_EQ(total_routed, static_cast<uint64_t>(kThreads * kRounds));
  EXPECT_EQ(pool.stats().dedup.leaders, static_cast<uint64_t>(unique));

  // Bit-identical against the unsharded oracle: sharding changed placement,
  // never arithmetic.
  ModelRegistry fresh_registry;
  ASSERT_TRUE(fresh_registry.Register("m", TinyModel()).ok());
  InferenceEngine fresh(&fresh_registry);
  DiscoveryRequest check;
  check.model = "m";
  check.windows = hot;
  const DiscoveryResponse expected = fresh.Discover(std::move(check));
  ASSERT_TRUE(expected.status.ok());
  ASSERT_NE(hot_result, nullptr);
  ExpectSameDetection(*hot_result, *expected.result);
}

// Dedup off (the bench baseline): identical concurrent queries all compute.
TEST(ServeStressTest, DedupDisabledComputesEverySubmission) {
  if (ThreadPool::Global().num_threads() <= 1) {
    GTEST_SKIP() << "needs a multi-worker pool to hold requests in flight";
  }
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", TinyModel()).ok());
  DetectCounter counter;
  EngineOptions opts;
  opts.cache_capacity = 0;
  opts.dedup_in_flight = false;
  opts.detect_observer_for_testing = counter.hook();
  InferenceEngine engine(&registry, opts);

  constexpr int kThreads = 4;
  const Tensor windows = RandomWindows(2, 970);
  PoolHostage hostage;
  std::vector<std::future<DiscoveryResponse>> futures;
  for (int t = 0; t < kThreads; ++t) {
    DiscoveryRequest request;
    request.model = "m";
    request.windows = windows;
    futures.push_back(engine.SubmitAsync(std::move(request)));
  }
  hostage.Release();
  for (auto& f : futures) ASSERT_TRUE(f.get().status.ok());
  // One key, but every submission computed (they coalesce into batches, so
  // the *batch* count may be lower — the invocation count is per request).
  EXPECT_EQ(counter.total(), kThreads);
  EXPECT_EQ(counter.unique_keys(), 1u);
  EXPECT_EQ(engine.dedup_stats().leaders, 0u);
}

}  // namespace
}  // namespace serve
}  // namespace causalformer
