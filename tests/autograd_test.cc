#include <gtest/gtest.h>

#include "tensor/autograd.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace causalformer {
namespace {

TEST(AutogradTest, NoGradWithoutRequiresGrad) {
  Tensor a = Tensor::Ones(Shape{2});
  Tensor b = Tensor::Ones(Shape{2});
  Tensor c = Add(a, b);
  EXPECT_FALSE(c.requires_grad());
  EXPECT_EQ(c.grad_fn(), nullptr);
}

TEST(AutogradTest, GradPropagatesThroughAdd) {
  Tensor a = Tensor::Ones(Shape{2}).set_requires_grad(true);
  Tensor b = Tensor::Ones(Shape{2}).set_requires_grad(true);
  Tensor c = Sum(Add(a, b));
  c.Backward();
  ASSERT_TRUE(a.grad().defined());
  EXPECT_FLOAT_EQ(a.grad().at({0}), 1.0f);
  EXPECT_FLOAT_EQ(b.grad().at({1}), 1.0f);
}

TEST(AutogradTest, MulProductRule) {
  Tensor a = Tensor::FromVector(Shape{2}, {2, 3}).set_requires_grad(true);
  Tensor b = Tensor::FromVector(Shape{2}, {5, 7}).set_requires_grad(true);
  Sum(Mul(a, b)).Backward();
  EXPECT_FLOAT_EQ(a.grad().at({0}), 5.0f);
  EXPECT_FLOAT_EQ(a.grad().at({1}), 7.0f);
  EXPECT_FLOAT_EQ(b.grad().at({0}), 2.0f);
}

TEST(AutogradTest, DiamondGraphAccumulates) {
  // y = x*x + x  => dy/dx = 2x + 1.
  Tensor x = Tensor::FromVector(Shape{1}, {3}).set_requires_grad(true);
  Tensor y = Sum(Add(Mul(x, x), x));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad().at({0}), 7.0f);
}

TEST(AutogradTest, GradAccumulatesAcrossBackwardCalls) {
  Tensor x = Tensor::Ones(Shape{1}).set_requires_grad(true);
  Tensor y1 = Sum(Scale(x, 2.0f));
  y1.Backward();
  Tensor y2 = Sum(Scale(x, 3.0f));
  y2.Backward();
  EXPECT_FLOAT_EQ(x.grad().at({0}), 5.0f);
  x.ZeroGrad();
  EXPECT_FLOAT_EQ(x.grad().at({0}), 0.0f);
}

TEST(AutogradTest, BroadcastAddReducesGrad) {
  Tensor a = Tensor::Ones(Shape{2, 3}).set_requires_grad(true);
  Tensor b = Tensor::Ones(Shape{3}).set_requires_grad(true);
  Sum(Add(a, b)).Backward();
  EXPECT_EQ(b.grad().shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(b.grad().at({0}), 2.0f);  // summed over the broadcast rows
}

TEST(AutogradTest, MatMulGradShapes) {
  Rng rng(3);
  Tensor a = Tensor::Randn(Shape{3, 4}, &rng, true);
  Tensor b = Tensor::Randn(Shape{4, 5}, &rng, true);
  Sum(MatMul(a, b)).Backward();
  EXPECT_EQ(a.grad().shape(), (Shape{3, 4}));
  EXPECT_EQ(b.grad().shape(), (Shape{4, 5}));
}

TEST(AutogradTest, BatchedMatMulWithSharedRhsReducesGrad) {
  Rng rng(4);
  Tensor a = Tensor::Randn(Shape{6, 3, 4}, &rng, true);
  Tensor b = Tensor::Randn(Shape{4, 5}, &rng, true);
  Sum(MatMul(a, b)).Backward();
  EXPECT_EQ(a.grad().shape(), (Shape{6, 3, 4}));
  EXPECT_EQ(b.grad().shape(), (Shape{4, 5}));
}

TEST(AutogradTest, IntermediateTensorsRetainGrad) {
  // The causality detector reads gradients of intermediates (attention).
  Tensor x = Tensor::FromVector(Shape{2}, {1, 2}).set_requires_grad(true);
  Tensor mid = Mul(x, x);
  Tensor y = Sum(mid);
  y.Backward();
  ASSERT_TRUE(mid.grad().defined());
  EXPECT_FLOAT_EQ(mid.grad().at({0}), 1.0f);
}

TEST(AutogradTest, ReverseTopoOrderStartsAtRoot) {
  Tensor x = Tensor::Ones(Shape{1}).set_requires_grad(true);
  Tensor y = Mul(Add(x, x), x);
  const auto order = ReverseTopoOrder(y);
  ASSERT_FALSE(order.empty());
  EXPECT_EQ(order.front().impl(), y.impl());
  // Leaf appears after everything that consumes it.
  EXPECT_EQ(order.back().impl(), x.impl());
}

TEST(AutogradTest, BackwardWithExplicitSeed) {
  Tensor x = Tensor::Ones(Shape{2, 2}).set_requires_grad(true);
  Tensor y = Scale(x, 3.0f);
  Tensor seed = Tensor::FromVector(Shape{2, 2}, {1, 0, 0, 2});
  y.Backward(seed);
  EXPECT_FLOAT_EQ(x.grad().at({0, 0}), 3.0f);
  EXPECT_FLOAT_EQ(x.grad().at({0, 1}), 0.0f);
  EXPECT_FLOAT_EQ(x.grad().at({1, 1}), 6.0f);
}

TEST(AutogradTest, DetachStopsGradient) {
  Tensor x = Tensor::FromVector(Shape{1}, {2}).set_requires_grad(true);
  Tensor y = Mul(x, x).Detach();
  EXPECT_FALSE(y.requires_grad());
  Tensor z = Sum(Mul(y, x));
  z.Backward();
  // Only the direct x factor contributes: dz/dx = y = 4.
  EXPECT_FLOAT_EQ(x.grad().at({0}), 4.0f);
}

TEST(AutogradTest, SliceConcatRoundTripGradient) {
  Tensor x = Tensor::FromVector(Shape{4}, {1, 2, 3, 4}).set_requires_grad(true);
  Tensor a = Slice(x, 0, 0, 2);
  Tensor b = Slice(x, 0, 2, 4);
  Tensor y = Sum(Concat({Scale(a, 2.0f), Scale(b, 3.0f)}, 0));
  y.Backward();
  EXPECT_FLOAT_EQ(x.grad().at({0}), 2.0f);
  EXPECT_FLOAT_EQ(x.grad().at({3}), 3.0f);
}

TEST(AutogradTest, LongChainDeepGraph) {
  // Deep graphs must not overflow the stack (iterative DFS).
  Tensor x = Tensor::Ones(Shape{1}).set_requires_grad(true);
  Tensor y = x;
  for (int i = 0; i < 2000; ++i) y = AddScalar(y, 0.001f);
  Sum(y).Backward();
  EXPECT_FLOAT_EQ(x.grad().at({0}), 1.0f);
}

}  // namespace
}  // namespace causalformer
