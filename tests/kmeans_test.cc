#include <gtest/gtest.h>

#include <algorithm>

#include "graph/kmeans.h"
#include "util/rng.h"

namespace causalformer {
namespace {

TEST(KMeansTest, TwoObviousClusters) {
  const std::vector<double> values = {0.01, 0.02, 0.03, 0.9, 0.95, 0.92};
  const KMeans1dResult res = KMeans1d(values, 2);
  ASSERT_EQ(res.centroids.size(), 2u);
  EXPECT_LT(res.centroids[0], 0.1);
  EXPECT_GT(res.centroids[1], 0.8);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(res.assignment[i], 0);
  for (int i = 3; i < 6; ++i) EXPECT_EQ(res.assignment[i], 1);
}

TEST(KMeansTest, CentroidsAreAscending) {
  Rng rng(1);
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(rng.Uniform());
  const KMeans1dResult res = KMeans1d(values, 4);
  for (size_t c = 1; c < res.centroids.size(); ++c) {
    EXPECT_LE(res.centroids[c - 1], res.centroids[c]);
  }
}

TEST(KMeansTest, AssignmentsMatchNearestCentroid) {
  Rng rng(2);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(rng.Normal());
  const KMeans1dResult res = KMeans1d(values, 3);
  for (size_t i = 0; i < values.size(); ++i) {
    double best = 1e18;
    int best_c = -1;
    for (size_t c = 0; c < res.centroids.size(); ++c) {
      const double d = std::abs(values[i] - res.centroids[c]);
      if (d < best) {
        best = d;
        best_c = static_cast<int>(c);
      }
    }
    EXPECT_EQ(res.assignment[i], best_c) << "value " << values[i];
  }
}

TEST(KMeansTest, KClampsToDistinctValues) {
  const std::vector<double> values = {1.0, 1.0, 2.0, 2.0};
  const KMeans1dResult res = KMeans1d(values, 5);
  EXPECT_LE(res.centroids.size(), 2u);
}

TEST(KMeansTest, SingleValueDegenerates) {
  const std::vector<double> values = {3.0, 3.0, 3.0};
  const KMeans1dResult res = KMeans1d(values, 2);
  ASSERT_EQ(res.centroids.size(), 1u);
  EXPECT_DOUBLE_EQ(res.centroids[0], 3.0);
}

TEST(TopClusterTest, SelectsHighClassOnly) {
  const std::vector<double> values = {0.05, 0.9, 0.07, 0.85, 0.02};
  const std::vector<int> top = TopClusterIndices(values, 2, 1);
  EXPECT_EQ(top, (std::vector<int>{1, 3}));
}

TEST(TopClusterTest, TopTwoOfThreeIsDenser) {
  const std::vector<double> values = {0.05, 0.5, 0.9, 0.06, 0.55, 0.95};
  const std::vector<int> top1 = TopClusterIndices(values, 3, 1);
  const std::vector<int> top2 = TopClusterIndices(values, 3, 2);
  EXPECT_LT(top1.size(), top2.size());
  // Every index in top1 is also in top2 (monotone selection).
  for (const int i : top1) {
    EXPECT_NE(std::find(top2.begin(), top2.end(), i), top2.end());
  }
}

TEST(TopClusterTest, AllEqualValuesSelectNothing) {
  // A constant score vector carries no evidence; no edges should come out.
  const std::vector<double> values = {0.3, 0.3, 0.3, 0.3};
  EXPECT_TRUE(TopClusterIndices(values, 2, 1).empty());
}

class KMeansPropertyTest : public testing::TestWithParam<int> {};

TEST_P(KMeansPropertyTest, PartitionsAreContiguousInSortedOrder) {
  // 1-D k-means optimal clusters are intervals; Lloyd preserves this from a
  // sorted-quantile init.
  Rng rng(GetParam());
  std::vector<double> values;
  for (int i = 0; i < 50; ++i) values.push_back(rng.Uniform(0.0, 10.0));
  const KMeans1dResult res = KMeans1d(values, 3);
  // Sort by value and verify assignments are non-decreasing.
  std::vector<size_t> order(values.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return values[a] < values[b]; });
  int prev = -1;
  for (const size_t i : order) {
    EXPECT_GE(res.assignment[i], prev);
    prev = std::max(prev, res.assignment[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KMeansPropertyTest,
                         testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace causalformer
