#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "tensor/ops.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace causalformer {
namespace {

TEST(ShapeTest, NumelAndDims) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.ndim(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[1], 3);
  EXPECT_EQ(s.dim(-1), 4);
}

TEST(ShapeTest, ScalarShape) {
  Shape s{};
  EXPECT_EQ(s.ndim(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(ShapeTest, BroadcastRules) {
  EXPECT_EQ(BroadcastShapes(Shape{3, 1}, Shape{1, 4}), (Shape{3, 4}));
  EXPECT_EQ(BroadcastShapes(Shape{5}, Shape{2, 5}), (Shape{2, 5}));
  EXPECT_EQ(BroadcastShapes(Shape{}, Shape{2, 3}), (Shape{2, 3}));
  EXPECT_TRUE(BroadcastableTo(Shape{1, 4}, Shape{3, 4}));
  EXPECT_FALSE(BroadcastableTo(Shape{2, 4}, Shape{3, 4}));
}

TEST(TensorTest, FactoriesFillValues) {
  Tensor z = Tensor::Zeros(Shape{2, 2});
  Tensor o = Tensor::Ones(Shape{2, 2});
  Tensor f = Tensor::Full(Shape{2, 2}, 3.5f);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(z.data()[i], 0.0f);
    EXPECT_EQ(o.data()[i], 1.0f);
    EXPECT_EQ(f.data()[i], 3.5f);
  }
}

TEST(TensorTest, FromVectorAndAt) {
  Tensor t = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at({0, 0}), 1.0f);
  EXPECT_EQ(t.at({1, 2}), 6.0f);
  t.at({1, 0}) = 9.0f;
  EXPECT_EQ(t.at({1, 0}), 9.0f);
}

TEST(TensorTest, EyeIsIdentity) {
  Tensor e = Tensor::Eye(3);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_EQ(e.at({i, j}), i == j ? 1.0f : 0.0f);
    }
  }
}

TEST(TensorTest, HandleSharesStorageCloneDoesNot) {
  Tensor a = Tensor::Zeros(Shape{2});
  Tensor b = a;           // shares
  Tensor c = a.Clone();   // deep copy
  a.data()[0] = 5.0f;
  EXPECT_EQ(b.data()[0], 5.0f);
  EXPECT_EQ(c.data()[0], 0.0f);
}

TEST(TensorTest, ScalarItem) {
  EXPECT_FLOAT_EQ(Tensor::Scalar(2.5f).item(), 2.5f);
}

TEST(TensorTest, RandnIsSeeded) {
  Rng r1(5), r2(5);
  Tensor a = Tensor::Randn(Shape{10}, &r1);
  Tensor b = Tensor::Randn(Shape{10}, &r2);
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(a.data()[i], b.data()[i]);
}

TEST(OpsTest, AddSubMulDivElementwise) {
  Tensor a = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::FromVector(Shape{2, 2}, {4, 3, 2, 1});
  EXPECT_EQ(Add(a, b).at({0, 0}), 5.0f);
  EXPECT_EQ(Sub(a, b).at({0, 1}), -1.0f);
  EXPECT_EQ(Mul(a, b).at({1, 0}), 6.0f);
  EXPECT_EQ(Div(a, b).at({1, 1}), 4.0f);
}

TEST(OpsTest, BroadcastRowVector) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(Shape{3}, {10, 20, 30});
  Tensor c = Add(a, b);
  EXPECT_EQ(c.at({0, 0}), 11.0f);
  EXPECT_EQ(c.at({1, 2}), 36.0f);
}

TEST(OpsTest, BroadcastColumnVector) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(Shape{2, 1}, {10, 100});
  Tensor c = Mul(a, b);
  EXPECT_EQ(c.at({0, 2}), 30.0f);
  EXPECT_EQ(c.at({1, 0}), 400.0f);
}

TEST(OpsTest, BroadcastScalarOperand) {
  Tensor a = Tensor::FromVector(Shape{3}, {1, 2, 3});
  Tensor s = Tensor::Scalar(2.0f);
  Tensor c = Mul(a, s);
  EXPECT_EQ(c.at({2}), 6.0f);
}

TEST(OpsTest, UnaryFunctions) {
  Tensor x = Tensor::FromVector(Shape{4}, {-2, -0.5, 0.5, 2});
  EXPECT_FLOAT_EQ(Relu(x).at({0}), 0.0f);
  EXPECT_FLOAT_EQ(Relu(x).at({3}), 2.0f);
  EXPECT_FLOAT_EQ(LeakyRelu(x, 0.1f).at({0}), -0.2f);
  EXPECT_FLOAT_EQ(Abs(x).at({1}), 0.5f);
  EXPECT_NEAR(Sigmoid(x).at({3}), 1.0f / (1.0f + std::exp(-2.0f)), 1e-6);
  EXPECT_NEAR(Tanh(x).at({2}), std::tanh(0.5f), 1e-6);
  EXPECT_NEAR(Exp(x).at({0}), std::exp(-2.0f), 1e-6);
  EXPECT_FLOAT_EQ(Square(x).at({3}), 4.0f);
  EXPECT_FLOAT_EQ(Neg(x).at({0}), 2.0f);
  EXPECT_FLOAT_EQ(Scale(x, 3.0f).at({2}), 1.5f);
  EXPECT_FLOAT_EQ(AddScalar(x, 1.0f).at({0}), -1.0f);
}

TEST(OpsTest, MatMul2d) {
  Tensor a = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector(Shape{3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  // [[58, 64], [139, 154]]
  EXPECT_FLOAT_EQ(c.at({0, 0}), 58.0f);
  EXPECT_FLOAT_EQ(c.at({0, 1}), 64.0f);
  EXPECT_FLOAT_EQ(c.at({1, 0}), 139.0f);
  EXPECT_FLOAT_EQ(c.at({1, 1}), 154.0f);
}

TEST(OpsTest, MatMulBatchedLhs) {
  // [2, 2, 2] @ [2, 2]
  Tensor a = Tensor::FromVector(Shape{2, 2, 2}, {1, 0, 0, 1, 2, 0, 0, 2});
  Tensor b = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2, 2}));
  EXPECT_FLOAT_EQ(c.at({0, 0, 1}), 2.0f);
  EXPECT_FLOAT_EQ(c.at({1, 1, 0}), 6.0f);
}

TEST(OpsTest, MatMul2dLhsBatchedRhs) {
  Tensor a = Tensor::Eye(2);
  Tensor b = Tensor::FromVector(Shape{3, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});
  Tensor c = MatMul(a, b);
  EXPECT_EQ(c.shape(), (Shape{3, 2, 2}));
  for (int64_t i = 0; i < 12; ++i) EXPECT_FLOAT_EQ(c.data()[i], b.data()[i]);
}

TEST(OpsTest, SumMeanAll) {
  Tensor x = Tensor::FromVector(Shape{2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(Sum(x).item(), 10.0f);
  EXPECT_FLOAT_EQ(Mean(x).item(), 2.5f);
  EXPECT_FLOAT_EQ(L1Norm(Neg(x)).item(), 10.0f);
}

TEST(OpsTest, SumAlongAxis) {
  Tensor x = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor s0 = Sum(x, 0);
  EXPECT_EQ(s0.shape(), (Shape{3}));
  EXPECT_FLOAT_EQ(s0.at({0}), 5.0f);
  Tensor s1 = Sum(x, 1, /*keepdim=*/true);
  EXPECT_EQ(s1.shape(), (Shape{2, 1}));
  EXPECT_FLOAT_EQ(s1.at({1, 0}), 15.0f);
  Tensor m1 = Mean(x, -1);
  EXPECT_FLOAT_EQ(m1.at({0}), 2.0f);
}

TEST(OpsTest, ReshapeTransposeSliceConcat) {
  Tensor x = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor r = Reshape(x, Shape{3, 2});
  EXPECT_FLOAT_EQ(r.at({2, 1}), 6.0f);
  Tensor t = Transpose(x, 0, 1);
  EXPECT_EQ(t.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(t.at({2, 0}), 3.0f);
  EXPECT_FLOAT_EQ(t.at({1, 1}), 5.0f);
  Tensor s = Slice(x, 1, 1, 3);
  EXPECT_EQ(s.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(s.at({0, 0}), 2.0f);
  Tensor c = Concat({x, x}, 0);
  EXPECT_EQ(c.shape(), (Shape{4, 3}));
  EXPECT_FLOAT_EQ(c.at({3, 2}), 6.0f);
  Tensor c1 = Concat({x, s}, 1);
  EXPECT_EQ(c1.shape(), (Shape{2, 5}));
  EXPECT_FLOAT_EQ(c1.at({0, 4}), 3.0f);
}

TEST(OpsTest, Transpose3dMiddleDims) {
  Tensor x = Tensor::FromVector(Shape{2, 2, 2}, {0, 1, 2, 3, 4, 5, 6, 7});
  Tensor t = Transpose(x, 1, 2);
  EXPECT_FLOAT_EQ(t.at({0, 1, 0}), x.at({0, 0, 1}));
  EXPECT_FLOAT_EQ(t.at({1, 0, 1}), x.at({1, 1, 0}));
}

TEST(OpsTest, UnsqueezeSqueeze) {
  Tensor x = Tensor::FromVector(Shape{3}, {1, 2, 3});
  Tensor u = Unsqueeze(x, 0);
  EXPECT_EQ(u.shape(), (Shape{1, 3}));
  Tensor s = Squeeze(u, 0);
  EXPECT_EQ(s.shape(), (Shape{3}));
}

TEST(OpsTest, SoftmaxRowsSumToOne) {
  Tensor x = Tensor::FromVector(Shape{2, 3}, {1, 2, 3, 0, 0, 0});
  Tensor y = Softmax(x, 1);
  for (int64_t i = 0; i < 2; ++i) {
    float sum = 0.0f;
    for (int64_t j = 0; j < 3; ++j) sum += y.at({i, j});
    EXPECT_NEAR(sum, 1.0f, 1e-6);
  }
  // Uniform logits -> uniform distribution.
  EXPECT_NEAR(y.at({1, 0}), 1.0f / 3.0f, 1e-6);
  // Monotonicity.
  EXPECT_GT(y.at({0, 2}), y.at({0, 1}));
}

TEST(OpsTest, SoftmaxIsNumericallyStableForLargeLogits) {
  Tensor x = Tensor::FromVector(Shape{1, 3}, {1000.0f, 1000.0f, 1000.0f});
  Tensor y = Softmax(x, 1);
  EXPECT_NEAR(y.at({0, 0}), 1.0f / 3.0f, 1e-6);
}

TEST(OpsTest, SoftmaxAlongNonTrailingAxis) {
  Tensor x = Tensor::FromVector(Shape{2, 2}, {0, 10, 0, 10});
  Tensor y = Softmax(x, 0);
  EXPECT_NEAR(y.at({0, 0}) + y.at({1, 0}), 1.0f, 1e-6);
  EXPECT_NEAR(y.at({0, 0}), 0.5f, 1e-6);
}

TEST(OpsTest, SoftmaxFullyMaskedRowIsUniformNotNaN) {
  // Regression: an axis that is entirely -inf (a fully masked attention row)
  // used to produce exp(-inf - -inf) = NaN across the row. It must yield the
  // uniform distribution, and unmasked rows must be unaffected.
  const float ninf = -std::numeric_limits<float>::infinity();
  Tensor x = Tensor::FromVector(Shape{2, 4},
                                {ninf, ninf, ninf, ninf, 1.0f, 2.0f, 3.0f, 4.0f});
  Tensor y = Softmax(x, 1);
  for (int64_t j = 0; j < 4; ++j) {
    EXPECT_FALSE(std::isnan(y.at({0, j})));
    EXPECT_FLOAT_EQ(y.at({0, j}), 0.25f);
  }
  float sum = 0.0f;
  for (int64_t j = 0; j < 4; ++j) sum += y.at({1, j});
  EXPECT_NEAR(sum, 1.0f, 1e-6);
  EXPECT_GT(y.at({1, 3}), y.at({1, 2}));
}

TEST(OpsTest, SoftmaxPartiallyMaskedRowIgnoresMaskedEntries) {
  const float ninf = -std::numeric_limits<float>::infinity();
  Tensor x = Tensor::FromVector(Shape{1, 4}, {ninf, 0.0f, 0.0f, ninf});
  Tensor y = Softmax(x, 1);
  EXPECT_FLOAT_EQ(y.at({0, 0}), 0.0f);
  EXPECT_FLOAT_EQ(y.at({0, 3}), 0.0f);
  EXPECT_NEAR(y.at({0, 1}), 0.5f, 1e-6);
  EXPECT_NEAR(y.at({0, 2}), 0.5f, 1e-6);
}

TEST(OpsTest, SoftmaxFullyMaskedStridedAxisIsUniform) {
  // Same regression along a non-trailing (strided) axis: lane 0 fully masked,
  // lane 1 ordinary.
  const float ninf = -std::numeric_limits<float>::infinity();
  Tensor x = Tensor::FromVector(Shape{2, 2}, {ninf, 5.0f, ninf, 7.0f});
  Tensor y = Softmax(x, 0);
  EXPECT_FLOAT_EQ(y.at({0, 0}), 0.5f);
  EXPECT_FLOAT_EQ(y.at({1, 0}), 0.5f);
  EXPECT_NEAR(y.at({0, 1}) + y.at({1, 1}), 1.0f, 1e-6);
  EXPECT_GT(y.at({1, 1}), y.at({0, 1}));
}

TEST(TensorTest, OversizedShapeDiesAtConstruction) {
  // Index-arithmetic overflow must be caught at tensor construction (the
  // TensorBuffer byte cap), not surface as a wild pointer inside a kernel.
  EXPECT_DEATH(Tensor::Zeros(Shape{int64_t{1} << 30, int64_t{1} << 30}),
               "size cap");
  // numel() itself refuses products that overflow int64.
  EXPECT_DEATH(Shape({int64_t{1} << 40, int64_t{1} << 40}).numel(),
               "overflows");
}

TEST(OpsTest, ArgMaxIndex) {
  Tensor x = Tensor::FromVector(Shape{5}, {1, 9, 3, 9, 2});
  EXPECT_EQ(ArgMaxIndex(x), 1);  // first max wins
}

TEST(OpsTest, ReduceToShapeSumsBroadcastAxes) {
  Tensor t = Tensor::Ones(Shape{2, 3, 4});
  Tensor r = ReduceToShape(t, Shape{3, 1});
  EXPECT_EQ(r.shape(), (Shape{3, 1}));
  EXPECT_FLOAT_EQ(r.at({0, 0}), 8.0f);  // 2 * 4
  Tensor r2 = ReduceToShape(t, Shape{});
  EXPECT_FLOAT_EQ(r2.item(), 24.0f);
}

}  // namespace
}  // namespace causalformer
