#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "serve/engine_pool.h"
#include "serve/model_registry.h"
#include "serve_test_util.h"
#include "util/thread_pool.h"

// Shard fault-injection suite: kill and drain an EnginePool shard *mid-batch*
// — executing batch wedged on hostaged kernels, a dedup leader queued behind
// it with followers parked on its InFlightTable — and prove the failure
// contract: every caller resolves (errors, never hangs), the ring re-homes
// the dead shard's key space immediately, drain completes with zero client
// errors, and a restarted shard comes back cold (generation-keyed cache, so
// a stale score can never be served). The choreography lever is
// testutil::FailpointShard; timing is controlled, not raced. Runs under
// ThreadSanitizer in CI (the `tsan` job) with CF_NUM_THREADS=4.

namespace causalformer {
namespace serve {
namespace {

using testutil::ExpectSameDetection;
using testutil::FailpointShard;
using testutil::RandomWindows;
using testutil::TinyModel;

// Spin until `predicate` holds (bounded); awaits asynchronous state — ring
// rebuilds, drain flags — without sleeping fixed amounts.
template <typename Pred>
bool SpinUntil(Pred predicate,
               std::chrono::milliseconds budget = std::chrono::seconds(10)) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (!predicate()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

// A two-shard pool whose shard batchers hold exactly one batch in flight, so
// a wedged batch deterministically pins everything submitted after it in the
// queue — the shape every kill/drain scene here wants.
EnginePoolOptions FaultPoolOptions(size_t num_shards = 2) {
  EnginePoolOptions popts;
  popts.num_shards = num_shards;
  popts.engine.cache_capacity = 0;  // dedup only; no cache assistance
  popts.engine.batcher.max_in_flight_batches = 1;
  popts.engine.batcher.adaptive_in_flight = false;
  return popts;
}

DiscoveryRequest Query(uint64_t seed, int64_t b = 1) {
  DiscoveryRequest request;
  request.model = "m";
  request.windows = RandomWindows(b, seed);
  return request;
}

// Kill mid-batch. The contract, caller by caller: the batch that was
// executing when the kill landed finishes normally (its work is already on
// the detector); the leader queued behind it and every follower parked on
// that leader's in-flight entry resolve with the deterministic shutdown
// error — not a hang; the ring drops the shard the moment the kill starts,
// so pool submissions land on the survivor and succeed; and the pinned
// frontend rejects immediately while the slot is down.
TEST(ShardFaultTest, KillMidBatchResolvesEveryCallerAndReroutes) {
  if (ThreadPool::Global().num_threads() <= 1) {
    GTEST_SKIP() << "needs a multi-worker pool to wedge a batch mid-execute";
  }
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", TinyModel()).ok());
  EnginePool pool(&registry, FaultPoolOptions());

  FailpointShard fp(&pool, 0);
  auto executing = fp.SubmitStuck(Query(500));

  // A distinct leader queues behind the wedged batch; three duplicates park
  // on its in-flight entry as followers.
  auto leader = pool.shard_frontend(0)->SubmitAsync(Query(501, 2));
  std::vector<std::future<DiscoveryResponse>> followers;
  for (int i = 0; i < 3; ++i) {
    followers.push_back(pool.shard_frontend(0)->SubmitAsync(Query(501, 2)));
  }
  EXPECT_EQ(pool.shard_stats()[0].engine.dedup.hits, 3u);

  fp.KillAsync();
  // The ring re-homes shard 0's keys before the engine teardown blocks on
  // the wedged batch — the fault is visible to routing immediately.
  ASSERT_TRUE(SpinUntil([&] { return !pool.router().is_live(0); }));
  EXPECT_FALSE(pool.shard_stats()[0].live);

  // The pinned frontend fails fast while the slot is down...
  const DiscoveryResponse direct =
      pool.shard_frontend(0)->SubmitAsync(Query(502)).get();
  EXPECT_EQ(direct.status.code(), StatusCode::kFailedPrecondition);
  // ...while a pool submission routes to the survivor (it completes once
  // the kernels are released; routing is checked now, the result later).
  auto rerouted = pool.SubmitAsync(Query(503));
  EXPECT_EQ(pool.shard_stats()[1].routed, 1u);
  EXPECT_EQ(pool.shard_stats()[0].routed, 0u);

  fp.ReleaseKernels();
  EXPECT_TRUE(fp.Join().ok());

  // The wedged batch was mid-execution: it completes normally.
  EXPECT_TRUE(executing.get().status.ok());
  // The queued leader and every parked follower fan in with the shutdown
  // rejection — same code for all, nobody hangs.
  const DiscoveryResponse leader_response = leader.get();
  EXPECT_EQ(leader_response.status.code(), StatusCode::kFailedPrecondition);
  for (auto& f : followers) {
    const DiscoveryResponse r = f.get();
    EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition)
        << r.status.ToString();
    EXPECT_TRUE(r.deduped);
  }
  const DiscoveryResponse survivor = rerouted.get();
  ASSERT_TRUE(survivor.status.ok()) << survivor.status.ToString();

  // The dead slot reports zeroed engine counters — a killed engine's
  // counters die with it.
  const auto rows = pool.shard_stats();
  EXPECT_FALSE(rows[0].live);
  EXPECT_FALSE(rows[0].draining);
  EXPECT_EQ(rows[0].engine.batcher.requests, 0u);
  EXPECT_TRUE(rows[1].live);
}

// Drain mid-batch: same scene, graceful path. Drain re-homes the ring slice
// first, then quiesces — so the wedged batch, the queued leader and its
// followers all complete through the normal path with ZERO client errors,
// and only then is the engine destroyed.
TEST(ShardFaultTest, DrainMidBatchCompletesEveryCallerWithZeroErrors) {
  if (ThreadPool::Global().num_threads() <= 1) {
    GTEST_SKIP() << "needs a multi-worker pool to wedge a batch mid-execute";
  }
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", TinyModel()).ok());
  EnginePool pool(&registry, FaultPoolOptions());

  FailpointShard fp(&pool, 0);
  auto executing = fp.SubmitStuck(Query(510));
  auto leader = pool.shard_frontend(0)->SubmitAsync(Query(511, 2));
  std::vector<std::future<DiscoveryResponse>> followers;
  for (int i = 0; i < 3; ++i) {
    followers.push_back(pool.shard_frontend(0)->SubmitAsync(Query(511, 2)));
  }

  fp.DrainAsync();
  // Draining is visible (flag + ring off) while the quiesce poll waits on
  // the wedged batch; the engine is still up, finishing its queue.
  ASSERT_TRUE(SpinUntil([&] { return pool.shard_stats()[0].draining; }));
  EXPECT_FALSE(pool.router().is_live(0));
  auto rerouted = pool.SubmitAsync(Query(512));
  EXPECT_EQ(pool.shard_stats()[1].routed, 1u);

  fp.ReleaseKernels();
  EXPECT_TRUE(fp.Join().ok());

  // Zero errors on the graceful path: everything the shard had accepted
  // completes, followers sharing the leader's result object.
  EXPECT_TRUE(executing.get().status.ok());
  const DiscoveryResponse leader_response = leader.get();
  ASSERT_TRUE(leader_response.status.ok()) << leader_response.status.ToString();
  for (auto& f : followers) {
    const DiscoveryResponse r = f.get();
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_TRUE(r.deduped);
    EXPECT_EQ(r.result.get(), leader_response.result.get());
  }
  ASSERT_TRUE(rerouted.get().status.ok());

  // Quiesced, detached, destroyed: down and no longer draining.
  const auto rows = pool.shard_stats();
  EXPECT_FALSE(rows[0].live);
  EXPECT_FALSE(rows[0].draining);

  // The drained slot restarts clean.
  ASSERT_TRUE(pool.RestartShard(0).ok());
  EXPECT_TRUE(pool.shard_stats()[0].live);
  EXPECT_EQ(pool.shard_stats()[0].restarts, 1u);
  EXPECT_TRUE(pool.shard_frontend(0)->SubmitAsync(Query(513)).get().status.ok());
}

// The stale-score guard across a kill/restart cycle: a restarted shard gets
// a fresh engine (cold cache — the old engine's cache died with it), the
// recomputed scores are bit-identical for the same model generation, and a
// hot-swap bumps the generation so the old key can never be served again.
TEST(ShardFaultTest, RestartServesColdCacheAndGenerationKeyedScores) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", TinyModel()).ok());
  EnginePoolOptions popts;
  popts.num_shards = 2;
  popts.engine.cache_capacity = 16;
  EnginePool pool(&registry, popts);

  DiscoveryRequest query = Query(520, 2);
  const DiscoveryResponse first = pool.shard_frontend(0)->Discover(query);
  ASSERT_TRUE(first.status.ok()) << first.status.ToString();
  EXPECT_FALSE(first.cache_hit);
  EXPECT_TRUE(pool.shard_frontend(0)->Discover(query).cache_hit);
  EXPECT_EQ(pool.shard_stats()[0].engine.cache.size, 1u);

  ASSERT_TRUE(pool.KillShard(0).ok());
  EXPECT_EQ(pool.shard_frontend(0)->Discover(query).status.code(),
            StatusCode::kFailedPrecondition);
  // Repeated kill of a dead slot and restart of a live one both refuse.
  EXPECT_EQ(pool.KillShard(0).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(pool.RestartShard(1).code(), StatusCode::kFailedPrecondition);

  ASSERT_TRUE(pool.RestartShard(0).ok());
  EXPECT_EQ(pool.shard_stats()[0].restarts, 1u);
  EXPECT_TRUE(pool.shard_stats()[0].live);

  // Cold cache: the same query misses (nothing stale survived the kill),
  // recomputes, and — same weights, same generation — reproduces the
  // pre-kill scores bit for bit.
  const DiscoveryResponse recomputed = pool.shard_frontend(0)->Discover(query);
  ASSERT_TRUE(recomputed.status.ok()) << recomputed.status.ToString();
  EXPECT_FALSE(recomputed.cache_hit);
  ExpectSameDetection(*recomputed.result, *first.result);
  EXPECT_TRUE(pool.shard_frontend(0)->Discover(query).cache_hit);

  // Hot-swap "m": the registry generation bumps, so the cached pre-swap
  // result no longer matches any key — the swap can never serve stale.
  ASSERT_TRUE(pool.UnloadModel("m").ok());
  ASSERT_TRUE(registry.Register("m", TinyModel(/*seed=*/99)).ok());
  const DiscoveryResponse swapped = pool.shard_frontend(0)->Discover(query);
  ASSERT_TRUE(swapped.status.ok()) << swapped.status.ToString();
  EXPECT_FALSE(swapped.cache_hit);
  EXPECT_NE(swapped.result.get(), recomputed.result.get());
}

// The last live shard is load-bearing: kill and drain both refuse it, so an
// operator cannot fault the pool into "no live engine shard" — and after a
// restart elsewhere the refusal lifts.
TEST(ShardFaultTest, LastLiveShardCannotBeKilledOrDrained) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", TinyModel()).ok());
  EnginePool pool(&registry, FaultPoolOptions());

  ASSERT_TRUE(pool.KillShard(0).ok());
  EXPECT_EQ(pool.KillShard(1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(pool.DrainShard(1).code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(pool.SubmitAsync(Query(530)).get().status.ok());

  ASSERT_TRUE(pool.RestartShard(0).ok());
  EXPECT_TRUE(pool.KillShard(1).ok());
  EXPECT_TRUE(pool.SubmitAsync(Query(531)).get().status.ok());
}

// Routing property at the pool level: with a shard down, a burst of distinct
// queries all succeed and none of them is ever routed to the dead slot.
TEST(ShardFaultTest, PoolNeverRoutesToADeadShard) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", TinyModel()).ok());
  EnginePool pool(&registry, FaultPoolOptions(/*num_shards=*/4));
  ASSERT_TRUE(pool.KillShard(2).ok());

  constexpr int kQueries = 24;
  std::vector<std::future<DiscoveryResponse>> futures;
  for (int i = 0; i < kQueries; ++i) {
    futures.push_back(pool.SubmitAsync(Query(540 + static_cast<uint64_t>(i))));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().status.ok());

  const auto rows = pool.shard_stats();
  EXPECT_EQ(rows[2].routed, 0u);
  uint64_t routed = 0;
  for (const auto& row : rows) routed += row.routed;
  EXPECT_EQ(routed, static_cast<uint64_t>(kQueries));
}

}  // namespace
}  // namespace serve
}  // namespace causalformer
