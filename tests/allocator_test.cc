#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/detector.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "tensor/allocator.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace causalformer {
namespace {

TEST(CpuAllocatorTest, ReturnsAlignedMemory) {
  auto& alloc = CpuAllocator::Global();
  for (const size_t bytes : {1u, 7u, 64u, 1000u, 4096u}) {
    void* p = alloc->Allocate(bytes);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % kTensorAlignment, 0u);
    alloc->Deallocate(p, bytes);
  }
}

TEST(TensorBufferTest, AlignmentAndCount) {
  TensorBuffer buf(CpuAllocator::Global(), 13);
  EXPECT_EQ(buf.count(), 13);
  EXPECT_EQ(buf.device(), DeviceTag::kCpu);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % kTensorAlignment, 0u);
  // AVX2 aligned loads need 32 bytes; the cache-line alignment covers it.
  EXPECT_GE(kTensorAlignment, 32u);
}

TEST(ArenaAllocatorTest, ReusesSameClassBlocks) {
  ArenaAllocator arena;
  void* a = arena.Allocate(100);  // -> 128B class
  arena.Deallocate(a, 100);
  void* b = arena.Allocate(120);  // same class, must come from the pool
  EXPECT_EQ(a, b);
  arena.Deallocate(b, 120);

  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.allocs, 2);
  EXPECT_EQ(stats.parent_allocs, 1);
  EXPECT_EQ(stats.pool_hits, 1);
  EXPECT_EQ(stats.outstanding, 0);
  EXPECT_GT(stats.pooled_bytes, 0);
}

TEST(ArenaAllocatorTest, DifferentClassesDoNotMix) {
  ArenaAllocator arena;
  void* small = arena.Allocate(64);
  arena.Deallocate(small, 64);
  void* large = arena.Allocate(4096);
  EXPECT_NE(small, large);  // 4096B request cannot reuse the 64B block
  arena.Deallocate(large, 4096);
  EXPECT_EQ(arena.stats().parent_allocs, 2);
}

TEST(ArenaAllocatorTest, ResetReturnsPooledBlocksToParent) {
  auto tracking = std::make_shared<TrackingAllocator>();
  ArenaAllocator arena(tracking);
  void* p = arena.Allocate(256);
  arena.Deallocate(p, 256);
  EXPECT_EQ(arena.stats().pooled_bytes, 256);
  arena.Reset();
  EXPECT_EQ(arena.stats().pooled_bytes, 0);
  EXPECT_EQ(tracking->allocate_calls(), 1);
  EXPECT_EQ(tracking->deallocate_calls(), 1);
  // After Reset the pool is cold again: the next request hits the parent.
  void* q = arena.Allocate(256);
  EXPECT_EQ(tracking->allocate_calls(), 2);
  arena.Deallocate(q, 256);
}

TEST(ArenaAllocatorTest, CrossThreadAllocAndFree) {
  // Buffers allocated on one thread may be released from another (a detect
  // worker hands results to the caller). Hammer the arena from several
  // threads; run under TSan in CI.
  auto arena = std::make_shared<ArenaAllocator>();
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&arena, t] {
      for (int r = 0; r < kRounds; ++r) {
        const size_t bytes = 64u << ((t + r) % 6);
        void* p = arena->Allocate(bytes);
        ASSERT_NE(p, nullptr);
        arena->Deallocate(p, bytes);
      }
    });
  }
  for (auto& w : workers) w.join();
  const ArenaStats stats = arena->stats();
  EXPECT_EQ(stats.allocs, kThreads * kRounds);
  EXPECT_EQ(stats.outstanding, 0);
}

TEST(ScopedAllocatorTest, InstallsAndRestoresPerThread) {
  auto arena = std::make_shared<ArenaAllocator>();
  EXPECT_EQ(CurrentAllocator()->name(), "cpu");
  {
    ScopedAllocator guard(arena);
    EXPECT_EQ(CurrentAllocator()->name(), "cpu-arena");
    {
      auto inner = std::make_shared<TrackingAllocator>();
      ScopedAllocator nested(inner);
      EXPECT_EQ(CurrentAllocator()->name(), "tracking");
    }
    EXPECT_EQ(CurrentAllocator()->name(), "cpu-arena");
    // Another thread sees the default: the scope is thread-local.
    std::thread([] {
      EXPECT_EQ(CurrentAllocator()->name(), "cpu");
    }).join();
  }
  EXPECT_EQ(CurrentAllocator()->name(), "cpu");
}

TEST(ScopedAllocatorTest, TensorsDrawFromTheInstalledAllocator) {
  auto tracking = std::make_shared<TrackingAllocator>();
  const int64_t before = tracking->allocate_calls();
  {
    ScopedAllocator guard(tracking);
    Tensor t = Tensor::Zeros(Shape{4, 4});
    EXPECT_EQ(tracking->allocate_calls(), before + 1);
    // Zeros must clear recycled (dirty) memory.
    for (int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t.data()[i], 0.0f);
  }
  Tensor outside = Tensor::Zeros(Shape{4, 4});
  EXPECT_EQ(tracking->allocate_calls(), before + 1);
}

TEST(ArenaAllocatorTest, BufferMayOutliveScopeAndFreeLater) {
  auto arena = std::make_shared<ArenaAllocator>();
  Tensor survivor;
  {
    ScopedAllocator guard(arena);
    survivor = Tensor::Full(Shape{8}, 3.0f);
  }
  // The buffer still reads correctly after the scope ended...
  EXPECT_EQ(survivor.data()[0], 3.0f);
  EXPECT_EQ(arena->stats().outstanding, 1);
  // ...and releasing it parks the block back in the arena's pool.
  survivor = Tensor();
  EXPECT_EQ(arena->stats().outstanding, 0);
  EXPECT_GT(arena->stats().pooled_bytes, 0);
}

// The tentpole acceptance test: after a warm-up request, a steady-state
// detect performs zero allocations through to the parent allocator — every
// tensor the pass creates recycles through DetectArena()'s free lists. The
// detector installs DetectArena() itself, so the assertion reads that arena's
// parent_allocs counter directly.
TEST(DetectArenaTest, SteadyStateDetectDoesZeroMallocs) {
  Rng rng(7);
  data::SyntheticOptions sopt;
  sopt.length = 80;
  const data::Dataset dataset =
      data::GenerateSynthetic(data::SyntheticStructure::kFork, sopt, &rng);

  core::ModelOptions mopt;
  mopt.num_series = dataset.num_series();
  mopt.window = 8;
  mopt.d_model = 8;
  mopt.d_qk = 8;
  mopt.heads = 1;
  mopt.d_ffn = 8;
  core::CausalityTransformer model(mopt, &rng);

  core::TrainOptions topt;
  topt.max_epochs = 1;
  Tensor windows;
  core::TrainCausalityTransformer(&model, dataset.series, topt, &rng,
                                  &windows);

  const core::DetectorOptions dopts;
  // Warm-up request: populates the arena's size-class pools.
  const auto first = core::DetectCausalGraph(model, windows, dopts);
  ASSERT_GT(first.scores.num_series(), 0);

  const int64_t warm = DetectArena()->stats().parent_allocs;
  const auto second = core::DetectCausalGraph(model, windows, dopts);
  EXPECT_EQ(DetectArena()->stats().parent_allocs, warm)
      << "steady-state detect reached the parent allocator";

  // Same request, same result: recycled (dirty) arena blocks must not leak
  // stale values into a repeated detection.
  const int n = first.scores.num_series();
  ASSERT_EQ(second.scores.num_series(), n);
  for (int from = 0; from < n; ++from) {
    for (int to = 0; to < n; ++to) {
      EXPECT_EQ(first.scores.at(from, to), second.scores.at(from, to));
    }
  }
}

}  // namespace
}  // namespace causalformer
