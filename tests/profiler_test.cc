#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

// The sampling profiler: deterministic buffer accounting through the
// exposed RecordSample/SampleNow paths (overflow drops are exact and
// never block), render edge cases (zero samples, folded separators),
// the Start/Stop/Collect lifecycle including the one-installed-profiler
// invariant, live SIGPROF sampling against a CPU burner, and the
// cf_profiler_* self-metrics. The TSan CI leg runs this suite: the
// signal handler's relaxed-atomic buffer discipline is exactly the kind
// of code a race detector should sit on.

namespace causalformer {
namespace obs {
namespace {

// Synthetic leaf-first stacks for the deterministic buffer tests; the
// addresses need not symbolize (unresolvable frames render as hex).
void* FakeFrame(uintptr_t v) { return reinterpret_cast<void*>(v); }

TEST(ProfilingThreadRegistryTest, RegistersAndReadsBack) {
  std::string seen;
  std::thread t([&seen] {
    RegisterProfilingThread("cf-test-thread");
    const char* name = CurrentProfilingThreadName();
    seen = name != nullptr ? name : "";
  });
  t.join();
  EXPECT_EQ(seen, "cf-test-thread");
}

TEST(ProfilingThreadRegistryTest, ReRegistrationWins) {
  std::string seen;
  std::thread t([&seen] {
    RegisterProfilingThread("cf-first");
    RegisterProfilingThread("cf-second");
    seen = CurrentProfilingThreadName();
  });
  t.join();
  EXPECT_EQ(seen, "cf-second");
}

TEST(ProfilerTest, RecordSampleFillsBufferThenCountsExactDrops) {
  ProfilerOptions options;
  options.max_samples = 8;
  Profiler profiler(options);

  void* frames[2] = {FakeFrame(0x1000), FakeFrame(0x2000)};
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(profiler.RecordSample(frames, 2));
  }
  EXPECT_EQ(profiler.sample_count(), 8u);
  EXPECT_EQ(profiler.drop_count(), 0u);

  // The buffer is full: every further record is a drop, counted exactly,
  // and the call keeps returning (it must never block — this is the
  // signal handler's path).
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(profiler.RecordSample(frames, 2));
  }
  EXPECT_EQ(profiler.sample_count(), 8u);
  EXPECT_EQ(profiler.drop_count(), 5u);

  // Clear starts a fresh accounting window: buffer reusable, drops reset.
  profiler.Clear();
  EXPECT_EQ(profiler.sample_count(), 0u);
  EXPECT_EQ(profiler.drop_count(), 0u);
  EXPECT_TRUE(profiler.RecordSample(frames, 2));
  EXPECT_EQ(profiler.sample_count(), 1u);
}

TEST(ProfilerTest, ZeroSamplesRenderEmptyFoldedAndValidJson) {
  Profiler profiler;
  EXPECT_EQ(profiler.RenderFolded(), "");
  // The chrome export must be loadable JSON even with nothing sampled.
  const std::string json = profiler.RenderChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\":\"X\""), std::string::npos);
}

TEST(ProfilerTest, FoldedRendersThreadPrefixAndCounts) {
  Profiler profiler;
  std::thread t([&profiler] {
    RegisterProfilingThread("cf-folded");
    void* frames[2] = {FakeFrame(0x1000), FakeFrame(0x2000)};
    profiler.RecordSample(frames, 2);
    profiler.RecordSample(frames, 2);
  });
  t.join();
  const std::string folded = profiler.RenderFolded();
  // One distinct stack, sampled twice: one line, " 2" suffix, thread first.
  EXPECT_EQ(folded.rfind("cf-folded;", 0), 0u) << folded;
  EXPECT_NE(folded.find(" 2\n"), std::string::npos) << folded;
}

TEST(ProfilerTest, SampleNowCapturesOwnStack) {
  Profiler profiler;
  profiler.SampleNow();
  EXPECT_EQ(profiler.sample_count(), 1u);
  // The sample symbolizes to *something* — at minimum the test binary's
  // frames render (hex at worst) and the folded line ends in a count.
  const std::string folded = profiler.RenderFolded();
  EXPECT_NE(folded.find(" 1\n"), std::string::npos) << folded;
}

TEST(ProfilerTest, CollectWithoutStartIsFailedPrecondition) {
  Profiler profiler;
  const auto report = profiler.Collect(0.01);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ProfilerTest, SecondRunningProfilerIsRejected) {
  Profiler first;
  ASSERT_TRUE(first.Start().ok());
  EXPECT_TRUE(first.running());
  EXPECT_EQ(Profiler::Installed(), &first);

  Profiler second;
  const Status st = second.Start();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(second.running());

  ASSERT_TRUE(first.Stop().ok());
  EXPECT_FALSE(first.running());
  EXPECT_EQ(Profiler::Installed(), nullptr);

  // With the first stopped, the second can take the signal.
  ASSERT_TRUE(second.Start().ok());
  ASSERT_TRUE(second.Stop().ok());
}

TEST(ProfilerTest, StopIsIdempotent) {
  Profiler profiler;
  ASSERT_TRUE(profiler.Start().ok());
  EXPECT_TRUE(profiler.Stop().ok());
  EXPECT_TRUE(profiler.Stop().ok());
}

// Burns CPU until `stop` flips — gives SIGPROF (which fires on consumed
// process CPU time) something to land on.
void BurnCpu(const std::atomic<bool>& stop) {
  volatile double sink = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    for (int i = 1; i < 2048; ++i) sink += 1.0 / i;
  }
}

TEST(ProfilerTest, LiveSamplingCapturesBurningThread) {
  Profiler profiler;
  ASSERT_TRUE(profiler.Start().ok());

  std::atomic<bool> stop{false};
  std::thread burner([&stop] {
    RegisterProfilingThread("cf-burner");
    BurnCpu(stop);
  });

  const auto report = profiler.Collect(0.5);
  stop.store(true);
  burner.join();
  ASSERT_TRUE(profiler.Stop().ok());

  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // 0.5 s of a pegged core at 97 Hz yields ~48 ticks; demand a loose
  // floor so loaded CI machines cannot flake this.
  EXPECT_GT(report->samples, 5u) << report->folded;
  EXPECT_NE(report->folded.find("cf-burner;"), std::string::npos)
      << report->folded;
}

TEST(ProfilerTest, CollectSyncsSelfMetrics) {
  MetricsRegistry registry;
  ProfilerOptions options;
  options.metrics = &registry;
  Profiler profiler(options);
  ASSERT_TRUE(profiler.Start().ok());

  std::atomic<bool> stop{false};
  std::thread burner([&stop] { BurnCpu(stop); });
  const auto report = profiler.Collect(0.3);
  stop.store(true);
  burner.join();
  ASSERT_TRUE(profiler.Stop().ok());
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("cf_profiler_samples_total"), std::string::npos);
  EXPECT_NE(text.find("cf_profiler_drops_total"), std::string::npos);
  EXPECT_NE(text.find("cf_profiler_overhead_seconds"), std::string::npos);
  EXPECT_NE(text.find("cf_profiler_hz 97"), std::string::npos);
  EXPECT_GE(registry.GetCounter("cf_profiler_samples_total")->Value(),
            report->samples);
}

TEST(ProfilerTest, DepthTruncatesAtConfiguredLimit) {
  ProfilerOptions options;
  options.max_depth = 3;
  Profiler profiler(options);
  std::vector<void*> frames;
  for (uintptr_t i = 1; i <= 10; ++i) frames.push_back(FakeFrame(i << 12));
  EXPECT_TRUE(profiler.RecordSample(frames.data(),
                                    static_cast<int>(frames.size())));
  const std::string folded = profiler.RenderFolded();
  // thread prefix + 3 retained frames = 3 ';' separators on the line.
  const std::string line = folded.substr(0, folded.find('\n'));
  EXPECT_EQ(std::count(line.begin(), line.end(), ';'), 3) << line;
}

}  // namespace
}  // namespace obs
}  // namespace causalformer
