#include <gtest/gtest.h>

#include "eval/experiment.h"
#include "eval/report.h"
#include "eval/runner.h"

namespace causalformer {
namespace {

using eval::DatasetKind;
using eval::ExperimentBudget;
using eval::MethodId;

ExperimentBudget TinyBudget() {
  ExperimentBudget b;
  b.seeds = 2;
  b.fmri_subjects = 2;
  b.series_length = 150;
  b.fmri_length = 80;
  b.fast = true;
  return b;
}

TEST(ExperimentTest, DatasetKindNames) {
  EXPECT_EQ(ToString(DatasetKind::kDiamond), "Diamond");
  EXPECT_EQ(ToString(DatasetKind::kFmri), "fMRI");
  EXPECT_EQ(eval::AllDatasetKinds().size(), 6u);
}

TEST(ExperimentTest, MakeDatasetsHonoursSeeds) {
  const auto ds = MakeDatasets(DatasetKind::kFork, TinyBudget(), 1);
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds[0].num_series(), 3);
  EXPECT_EQ(ds[0].length(), 150);
}

TEST(ExperimentTest, FmriRowCyclesSizes) {
  ExperimentBudget b = TinyBudget();
  b.fmri_subjects = 3;
  const auto ds = MakeDatasets(DatasetKind::kFmri, b, 2);
  ASSERT_EQ(ds.size(), 3u);
  EXPECT_EQ(ds[0].num_series(), 5);
  EXPECT_EQ(ds[1].num_series(), 10);
  EXPECT_EQ(ds[2].num_series(), 15);
}

TEST(ExperimentTest, ConfigMatchesPaperRegimes) {
  const ExperimentBudget b = TinyBudget();
  const auto diamond = CausalFormerConfigFor(DatasetKind::kDiamond, 4, b);
  EXPECT_FLOAT_EQ(diamond.model.tau, 1.0f);
  EXPECT_GT(diamond.train.lambda_k, 0.0f);
  const auto fork = CausalFormerConfigFor(DatasetKind::kVStructure, 3, b);
  EXPECT_FLOAT_EQ(fork.model.tau, 100.0f);
  EXPECT_LT(fork.train.lambda_k, 1e-8f);
  const auto lorenz = CausalFormerConfigFor(DatasetKind::kLorenz96, 10, b);
  EXPECT_EQ(lorenz.detector.num_clusters, 3);   // m/n = 2/3
  EXPECT_EQ(lorenz.detector.top_clusters, 2);
  const auto fmri = CausalFormerConfigFor(DatasetKind::kFmri, 15, b);
  EXPECT_FLOAT_EQ(fmri.train.lambda_k, 0.0f);   // paper removes penalties
  EXPECT_FLOAT_EQ(fmri.model.tau, 100.0f);
}

TEST(RunnerTest, MethodIdNames) {
  EXPECT_EQ(ToString(MethodId::kCausalFormer), "CausalFormer");
  EXPECT_EQ(eval::AllMethodIds().size(), 6u);
  EXPECT_EQ(eval::AllMethodIds().back(), MethodId::kCausalFormer);
}

TEST(RunnerTest, RunsBaselineOnForkRow) {
  const ExperimentBudget b = TinyBudget();
  const auto ds = MakeDatasets(DatasetKind::kFork, b, 3);
  const eval::RunMetrics m = RunMethod(MethodId::kDvgnn, DatasetKind::kFork,
                                       ds, b, /*seed=*/11);
  ASSERT_EQ(m.f1.size(), 2u);
  for (const double f1 : m.f1) {
    EXPECT_GE(f1, 0.0);
    EXPECT_LE(f1, 1.0);
  }
  EXPECT_FALSE(m.has_delays);
}

TEST(RunnerTest, RunsCausalFormerOnForkRow) {
  const ExperimentBudget b = TinyBudget();
  const auto ds = MakeDatasets(DatasetKind::kFork, b, 4);
  const eval::RunMetrics m = RunMethod(
      MethodId::kCausalFormer, DatasetKind::kFork, ds, b, /*seed=*/12);
  ASSERT_EQ(m.f1.size(), 2u);
  EXPECT_TRUE(m.has_delays);
  ASSERT_EQ(m.pod.size(), 2u);
}

TEST(RunnerTest, AblationTogglesProduceMetrics) {
  const ExperimentBudget b = TinyBudget();
  auto ds = MakeDatasets(DatasetKind::kFork, b, 5);
  ds.erase(ds.begin() + 1, ds.end());
  eval::AblationSpec spec;
  spec.use_gradient = false;
  const eval::RunMetrics m = RunCausalFormerAblated(
      DatasetKind::kFork, ds, b, /*seed=*/13, spec);
  ASSERT_EQ(m.f1.size(), 1u);
}

TEST(ReportTest, MetricCellFormatsMeanStd) {
  const std::string cell = eval::MetricCell({0.6, 0.8});
  EXPECT_EQ(cell, "0.70\xC2\xB1"
                  "0.10");
}

TEST(ReportTest, ClassifyEdgesMatchesConfusion) {
  CausalGraph truth(3);
  truth.AddEdge(0, 1);
  truth.AddEdge(1, 2);
  CausalGraph pred(3);
  pred.AddEdge(0, 1);
  pred.AddEdge(2, 0);
  const auto cls = eval::ClassifyEdges(truth, pred);
  ASSERT_EQ(cls.true_positives.size(), 1u);
  EXPECT_EQ(cls.true_positives[0], "S0->S1");
  ASSERT_EQ(cls.false_positives.size(), 1u);
  EXPECT_EQ(cls.false_positives[0], "S2->S0");
  ASSERT_EQ(cls.false_negatives.size(), 1u);
  EXPECT_EQ(cls.false_negatives[0], "S1->S2");
  const std::string rendered =
      eval::RenderEdgeClassification("TCDF", 0.76, cls);
  EXPECT_NE(rendered.find("TCDF"), std::string::npos);
  EXPECT_NE(rendered.find("0.76"), std::string::npos);
}

}  // namespace
}  // namespace causalformer
