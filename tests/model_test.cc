#include <gtest/gtest.h>

#include <cmath>

#include "core/causality_transformer.h"
#include "core/trainer.h"
#include "data/windowing.h"
#include "data/synthetic.h"
#include "tensor/ops.h"

namespace causalformer {
namespace {

using core::CausalityTransformer;
using core::ForwardResult;
using core::ModelOptions;

ModelOptions SmallOptions(int64_t n = 3, int64_t t = 8) {
  ModelOptions opt;
  opt.num_series = n;
  opt.window = t;
  opt.d_model = 16;
  opt.d_qk = 16;
  opt.heads = 2;
  opt.d_ffn = 16;
  return opt;
}

TEST(ModelTest, ForwardShapes) {
  Rng rng(1);
  CausalityTransformer model(SmallOptions(), &rng);
  Tensor x = Tensor::Randn(Shape{4, 3, 8}, &rng);
  const ForwardResult out = model.Forward(x);
  EXPECT_EQ(out.prediction.shape(), (Shape{4, 3, 8}));
  ASSERT_EQ(out.attention.size(), 2u);
  EXPECT_EQ(out.attention[0].shape(), (Shape{4, 3, 3}));
  EXPECT_EQ(out.conv.shape(), (Shape{4, 3, 3, 8}));
}

TEST(ModelTest, AttentionRowsAreDistributions) {
  Rng rng(2);
  CausalityTransformer model(SmallOptions(), &rng);
  Tensor x = Tensor::Randn(Shape{2, 3, 8}, &rng);
  const ForwardResult out = model.Forward(x);
  for (const Tensor& a : out.attention) {
    for (int64_t b = 0; b < a.dim(0); ++b) {
      for (int64_t i = 0; i < a.dim(1); ++i) {
        float sum = 0.0f;
        for (int64_t j = 0; j < a.dim(2); ++j) {
          const float v = a.at({b, i, j});
          EXPECT_GE(v, 0.0f);
          sum += v;
        }
        EXPECT_NEAR(sum, 1.0f, 1e-5);
      }
    }
  }
}

TEST(ModelTest, SelfPresentValueDoesNotLeakThroughConv) {
  // The diagonal right-shift hides X[i,t] from the conv channel (i,i,t).
  Rng rng(3);
  CausalityTransformer model(SmallOptions(), &rng);
  Tensor x = Tensor::Randn(Shape{1, 3, 8}, &rng);
  const ForwardResult base = model.Forward(x);
  Tensor x2 = x.Clone();
  x2.at({0, 1, 4}) += 3.0f;
  const ForwardResult pert = model.Forward(x2);
  for (int64_t t = 0; t <= 4; ++t) {
    EXPECT_FLOAT_EQ(base.conv.at({0, 1, 1, t}), pert.conv.at({0, 1, 1, t}))
        << "self conv leaked present value at t=" << t;
  }
}

TEST(ModelTest, ParameterInventoryMatchesArchitecture) {
  Rng rng(4);
  const ModelOptions opt = SmallOptions(3, 8);
  CausalityTransformer model(opt, &rng);
  const auto named = model.NamedParameters();
  // w_emb, b_emb, per-head wq/bq/wk/bk (2 heads -> 8), mask, kernel, w_o,
  // ffn1 (w+b), ffn2 (w+b), output (w+b) = 2 + 8 + 3 + 6 = 19.
  EXPECT_EQ(named.size(), 19u);
  // Kernel is [N, N, T] in multi-kernel mode.
  bool found_kernel = false;
  for (const auto& [name, t] : named) {
    if (name == "kernel") {
      found_kernel = true;
      EXPECT_EQ(t.shape(), (Shape{3, 3, 8}));
    }
  }
  EXPECT_TRUE(found_kernel);
}

TEST(ModelTest, SharedKernelAblationShrinksKernel) {
  Rng rng(5);
  ModelOptions opt = SmallOptions(4, 8);
  opt.multi_kernel = false;
  CausalityTransformer model(opt, &rng);
  EXPECT_EQ(model.kernel().shape(), (Shape{4, 1, 8}));
  Tensor x = Tensor::Randn(Shape{2, 4, 8}, &rng);
  EXPECT_EQ(model.Forward(x).prediction.shape(), (Shape{2, 4, 8}));
}

TEST(ModelTest, LossPenaltiesIncreaseLoss) {
  Rng rng(6);
  CausalityTransformer model(SmallOptions(), &rng);
  Tensor x = Tensor::Randn(Shape{2, 3, 8}, &rng);
  const ForwardResult out = model.Forward(x);
  const float plain = model.Loss(out, x, 0.0f, 0.0f).item();
  const float with_k = model.Loss(out, x, 0.1f, 0.0f).item();
  const float with_m = model.Loss(out, x, 0.0f, 0.1f).item();
  EXPECT_GT(with_k, plain);
  EXPECT_GT(with_m, plain);
}

TEST(ModelTest, LagPenaltyWeightsDistantTapsMore) {
  Rng rng(7);
  ModelOptions opt = SmallOptions();
  opt.lag_penalty = 1.0f;
  CausalityTransformer model(opt, &rng);
  Tensor x = Tensor::Randn(Shape{2, 3, 8}, &rng);
  const ForwardResult out = model.Forward(x);
  // Lag weights are >= 1 everywhere, so the weighted penalty must dominate
  // the plain lambda-scaled L1 of the same kernel.
  const float weighted = model.Loss(out, x, 0.1f, 0.0f).item();
  float l1 = 0.0f;
  for (int64_t i = 0; i < model.kernel().numel(); ++i) {
    l1 += std::fabs(model.kernel().data()[i]);
  }
  const float plain_mse = model.Loss(out, x, 0.0f, 0.0f).item();
  EXPECT_GT(weighted, plain_mse + 0.1f * l1 - 1e-4f);
}

TEST(ModelTest, GradientsReachAllParameters) {
  Rng rng(8);
  CausalityTransformer model(SmallOptions(), &rng);
  Tensor x = Tensor::Randn(Shape{4, 3, 8}, &rng);
  const ForwardResult out = model.Forward(x);
  model.Loss(out, x, 1e-4f, 1e-4f).Backward();
  for (const auto& [name, p] : model.NamedParameters()) {
    const Tensor g = p.grad();
    ASSERT_TRUE(g.defined()) << name;
    double norm = 0.0;
    for (int64_t i = 0; i < g.numel(); ++i) norm += std::fabs(g.data()[i]);
    EXPECT_GT(norm, 0.0) << "no gradient reached " << name;
  }
}

TEST(TrainerTest, LossDecreasesOnSyntheticData) {
  Rng rng(9);
  data::SyntheticOptions dopt;
  dopt.length = 200;
  const data::Dataset ds =
      data::GenerateSynthetic(data::SyntheticStructure::kFork, dopt, &rng);

  core::ModelOptions mopt = SmallOptions(ds.num_series(), 8);
  CausalityTransformer model(mopt, &rng);

  // Loss before training.
  Tensor windows = data::MakeWindows(ds.series, 8, 4);
  const float before =
      model.Loss(model.Forward(windows), windows, 0.0f, 0.0f).item();

  core::TrainOptions topt;
  topt.max_epochs = 15;
  topt.stride = 4;
  topt.lambda_k = 0.0f;
  topt.lambda_m = 0.0f;
  const core::TrainReport report =
      core::TrainCausalityTransformer(&model, ds.series, topt, &rng);
  EXPECT_GE(report.epochs_run, 1);

  const float after =
      model.Loss(model.Forward(windows), windows, 0.0f, 0.0f).item();
  EXPECT_LT(after, before);
}

TEST(TrainerTest, EarlyStoppingTriggersOnPlateau) {
  Rng rng(10);
  // Pure noise has nothing to learn: validation loss plateaus quickly.
  Tensor noise = Tensor::Randn(Shape{3, 120}, &rng);
  core::ModelOptions mopt = SmallOptions(3, 8);
  CausalityTransformer model(mopt, &rng);
  core::TrainOptions topt;
  topt.max_epochs = 200;
  topt.patience = 3;
  topt.stride = 4;
  const core::TrainReport report =
      core::TrainCausalityTransformer(&model, noise, topt, &rng);
  EXPECT_TRUE(report.early_stopped);
  EXPECT_LT(report.epochs_run, 200);
}

}  // namespace
}  // namespace causalformer
