// Routing-property tests for the bounded-load consistent-hash ShardRouter:
// determinism (same key → same live shard, across calls and across
// identically-configured routers), distribution flatness, bounded-load
// capping, minimal re-homing when a shard leaves, exact key reclamation
// when it returns, and full-cache-key / stream-name routing.

#include "serve/shard_router.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "serve/score_cache.h"
#include "util/rng.h"

namespace causalformer {
namespace serve {
namespace {

// 10k pseudorandom fingerprints, fixed seed: the property corpus.
std::vector<uint64_t> Corpus(size_t n = 10000, uint64_t seed = 42) {
  Rng rng(seed);
  std::vector<uint64_t> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) keys.push_back(rng.Next());
  return keys;
}

TEST(ShardRouterTest, RoutingIsDeterministicPerRouterAndAcrossRouters) {
  ShardRouter a(8);
  ShardRouter b(8);  // identically configured → identical placement
  for (const uint64_t key : Corpus(2000)) {
    const size_t shard = a.Route(key);
    EXPECT_EQ(a.Route(key), shard);  // stable across calls
    EXPECT_EQ(b.Route(key), shard);  // stable across instances
    EXPECT_LT(shard, 8u);
  }
}

TEST(ShardRouterTest, DistributionWithinTwentyPercentOfUniform) {
  ShardRouter router(8);
  std::vector<int> counts(8, 0);
  const auto corpus = Corpus();
  for (const uint64_t key : corpus) ++counts[router.Route(key)];
  const double expected =
      static_cast<double>(corpus.size()) / static_cast<double>(counts.size());
  for (size_t s = 0; s < counts.size(); ++s) {
    EXPECT_GT(counts[s], expected * 0.8)
        << "shard " << s << " starved: " << counts[s];
    EXPECT_LT(counts[s], expected * 1.2)
        << "shard " << s << " overloaded: " << counts[s];
  }
}

TEST(ShardRouterTest, OwnedShareRespectsBoundedLoadCap) {
  ShardRouterOptions options;
  options.load_epsilon = 0.15;
  for (const size_t shards : {2u, 3u, 5u, 8u}) {
    ShardRouter router(shards, options);
    const auto share = router.OwnedShare();
    ASSERT_EQ(share.size(), shards);
    double total = 0;
    const double cap = (1.0 + options.load_epsilon) /
                       static_cast<double>(shards);
    for (size_t s = 0; s < shards; ++s) {
      EXPECT_LE(share[s], cap + 1e-9) << "shard " << s << " over the cap";
      total += share[s];
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(ShardRouterTest, RemovingOneShardRehomesAboutOneNth) {
  const size_t kShards = 8;
  ShardRouter router(kShards);
  const auto corpus = Corpus();
  std::map<uint64_t, size_t> before;
  for (const uint64_t key : corpus) before[key] = router.Route(key);

  router.SetLive(3, false);
  size_t moved = 0, moved_from_survivors = 0;
  for (const uint64_t key : corpus) {
    const size_t now = router.Route(key);
    EXPECT_NE(now, 3u);  // routing never returns a dead shard
    if (now != before[key]) {
      ++moved;
      if (before[key] != 3) ++moved_from_survivors;
    }
  }
  // Everything shard 3 owned must move (~1/8 of the corpus); keys on the
  // surviving shards mostly stay put — only bounded-load re-capping at the
  // new topology may shuffle a small fraction.
  const double n = static_cast<double>(corpus.size());
  EXPECT_GT(moved, n / kShards * 0.8);
  EXPECT_LT(moved, n / kShards * 0.8 + n * 0.15);
  EXPECT_LT(moved_from_survivors, n * 0.12)
      << "removal churned keys that never touched the dead shard";
}

TEST(ShardRouterTest, ReAddedShardReclaimsItsExactKeys) {
  // Vnode positions depend only on (seed, shard, vnode), so a shard leaving
  // and returning reproduces the original ring exactly — every key routes
  // where it did before the fault.
  ShardRouter router(8);
  const auto corpus = Corpus(4000, 7);
  std::map<uint64_t, size_t> before;
  for (const uint64_t key : corpus) before[key] = router.Route(key);
  router.SetLive(5, false);
  router.SetLive(5, true);
  for (const uint64_t key : corpus) EXPECT_EQ(router.Route(key), before[key]);
}

TEST(ShardRouterTest, LiveSetAccountingAndLastShardRoutes) {
  ShardRouter router(3);
  EXPECT_EQ(router.num_live(), 3u);
  router.SetLive(0, false);
  router.SetLive(2, false);
  EXPECT_EQ(router.num_live(), 1u);
  EXPECT_FALSE(router.is_live(0));
  EXPECT_TRUE(router.is_live(1));
  for (const uint64_t key : Corpus(500)) EXPECT_EQ(router.Route(key), 1u);
  const auto share = router.OwnedShare();
  EXPECT_NEAR(share[1], 1.0, 1e-9);  // sole survivor owns the whole space
  EXPECT_EQ(share[0], 0.0);
}

TEST(ShardRouterTest, FullCacheKeyRoutingCoLocatesIdenticalKeys) {
  // Two CacheKeys equal under CacheKeyHash must co-locate; changing any
  // component that changes the cache identity may (and usually does) move
  // the key.
  ShardRouter router(8);
  CacheKey key;
  key.model = "m";
  key.generation = 1;
  key.windows = WindowHash{0x1234567890abcdefull, 0xfedcba0987654321ull};
  key.options = "opts";
  CacheKey same = key;
  EXPECT_EQ(router.RouteKey(key), router.RouteKey(same));

  size_t moves = 0;
  for (int i = 0; i < 64; ++i) {
    CacheKey variant = key;
    variant.generation = static_cast<uint64_t>(2 + i);  // hot-swapped model
    if (router.RouteKey(variant) != router.RouteKey(key)) ++moves;
  }
  EXPECT_GT(moves, 0u) << "generation never entered the fingerprint";
}

TEST(ShardRouterTest, StreamPinningInvariantAcrossAppendsAndTopology) {
  // A stream's pin is RouteName at open; the name keeps routing identically
  // call after call (appends), and across a rebuild that didn't touch the
  // pinned shard.
  ShardRouter router(4);
  const std::string name = "sensor-stream-7";
  const size_t pin = router.RouteName(name);
  for (int append = 0; append < 100; ++append) {
    EXPECT_EQ(router.RouteName(name), pin);
  }
  const size_t other = (pin + 1) % 4;
  router.SetLive(other, false);
  router.SetLive(other, true);
  EXPECT_EQ(router.RouteName(name), pin);
}

}  // namespace
}  // namespace serve
}  // namespace causalformer
