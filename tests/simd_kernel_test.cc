#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "tensor/ops.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"

// Exhaustive tail sweep: every kernel in each built vectorized table is
// compared against the scalar reference over sizes 1..67, so every
// vector-width remainder path (0..width-1 tail lanes, the blocked and
// unblocked main loops) is exercised. Elementwise/accumulate/max kernels must
// match the scalar table exactly; horizontal reductions and the polynomial
// exp carry the tolerance documented in tensor/simd.h.

namespace causalformer {
namespace {

constexpr int64_t kMaxN = 67;

// Deterministic LCG fill in roughly [-2, 2); avoids RNG coupling to the
// tensor library under test.
void Fill(std::vector<float>* v, uint32_t seed) {
  uint32_t s = seed * 2654435761u + 12345u;
  for (float& x : *v) {
    s = s * 1664525u + 1013904223u;
    x = static_cast<float>((s >> 8) & 0xFFFF) / 16384.0f - 2.0f;
  }
}

std::vector<std::pair<std::string, const simd::KernelTable*>> VectorTables() {
  std::vector<std::pair<std::string, const simd::KernelTable*>> tables;
  if (const auto* t = simd::TableForLevel(simd::IsaLevel::kAvx2)) {
    tables.emplace_back("avx2", t);
  }
  if (const auto* t = simd::TableForLevel(simd::IsaLevel::kNeon)) {
    tables.emplace_back("neon", t);
  }
  return tables;
}

const simd::KernelTable& Scalar() {
  return *simd::TableForLevel(simd::IsaLevel::kScalar);
}

// Reassociation tolerance for a horizontal reduction: proportional to the L1
// mass of the summands, so near-cancelling sums don't trip a relative check.
void ExpectReduction(float ref, float got, double l1) {
  ASSERT_NEAR(got, ref, 64.0 * std::numeric_limits<float>::epsilon() * l1 +
                            1e-6);
}

// Polynomial exp vs std::exp: <= ~4 ulp relative; the absolute floor covers
// the documented flush-to-zero below -87.33 (scalar yields a subnormal).
void ExpectExp(float ref, float got) {
  ASSERT_NEAR(got, ref, 1e-5 * std::fabs(ref) + 1e-37);
}

class SimdKernelTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_level_ = simd::ActiveLevel(); }
  void TearDown() override { simd::SetLevelForTesting(saved_level_); }
  simd::IsaLevel saved_level_ = simd::IsaLevel::kScalar;
};

TEST_F(SimdKernelTest, ExactKernelsMatchScalarAtEverySize) {
  for (const auto& [name, vec] : VectorTables()) {
    const simd::KernelTable& ref = Scalar();
    for (int64_t n = 1; n <= kMaxN; ++n) {
      SCOPED_TRACE(name + " n=" + std::to_string(n));
      std::vector<float> a(n), b(n), base(n);
      Fill(&a, static_cast<uint32_t>(n));
      Fill(&b, static_cast<uint32_t>(n) + 1000);
      Fill(&base, static_cast<uint32_t>(n) + 2000);

      std::vector<float> want(n), got(n);

      ref.add(a.data(), b.data(), want.data(), n);
      vec->add(a.data(), b.data(), got.data(), n);
      for (int64_t i = 0; i < n; ++i) ASSERT_EQ(got[i], want[i]) << "add " << i;

      ref.sub(a.data(), b.data(), want.data(), n);
      vec->sub(a.data(), b.data(), got.data(), n);
      for (int64_t i = 0; i < n; ++i) ASSERT_EQ(got[i], want[i]) << "sub " << i;

      ref.mul(a.data(), b.data(), want.data(), n);
      vec->mul(a.data(), b.data(), got.data(), n);
      for (int64_t i = 0; i < n; ++i) ASSERT_EQ(got[i], want[i]) << "mul " << i;

      ref.div(a.data(), b.data(), want.data(), n);
      vec->div(a.data(), b.data(), got.data(), n);
      for (int64_t i = 0; i < n; ++i) ASSERT_EQ(got[i], want[i]) << "div " << i;

      ref.scale(-1.5f, a.data(), want.data(), n);
      vec->scale(-1.5f, a.data(), got.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << "scale " << i;
      }

      // scale must be in-place safe (Neg/Scale write through their input).
      want = a;
      ref.scale(0.5f, want.data(), want.data(), n);
      got = a;
      vec->scale(0.5f, got.data(), got.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << "scale-inplace " << i;
      }

      ref.add_scalar(0.75f, a.data(), want.data(), n);
      vec->add_scalar(0.75f, a.data(), got.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << "add_scalar " << i;
      }

      want = base;
      ref.accumulate(want.data(), a.data(), n);
      got = base;
      vec->accumulate(got.data(), a.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << "accumulate " << i;
      }

      want = base;
      ref.max_into(want.data(), a.data(), n);
      got = base;
      vec->max_into(got.data(), a.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << "max_into " << i;
      }

      want = base;
      ref.fma_into(want.data(), a.data(), b.data(), n);
      got = base;
      vec->fma_into(got.data(), a.data(), b.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << "fma_into " << i;
      }

      for (const float alpha : {0.0f, 1.0f, -2.25f}) {
        want = base;
        ref.axpy(alpha, a.data(), want.data(), n);
        got = base;
        vec->axpy(alpha, a.data(), got.data(), n);
        for (int64_t i = 0; i < n; ++i) {
          ASSERT_EQ(got[i], want[i]) << "axpy(" << alpha << ") " << i;
        }
      }

      ASSERT_EQ(vec->max(a.data(), n), ref.max(a.data(), n)) << "max";

      ref.mul_sub(a.data(), b.data(), base.data(), want.data(), n);
      vec->mul_sub(a.data(), b.data(), base.data(), got.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << "mul_sub " << i;
      }

      ref.mul_sub_scalar(a.data(), b.data(), 0.3f, want.data(), n);
      vec->mul_sub_scalar(a.data(), b.data(), 0.3f, got.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << "mul_sub_scalar " << i;
      }
    }
  }
}

TEST_F(SimdKernelTest, StabRatioMatchesScalarIncludingSignedZero) {
  for (const auto& [name, vec] : VectorTables()) {
    const simd::KernelTable& ref = Scalar();
    for (int64_t n = 1; n <= kMaxN; ++n) {
      SCOPED_TRACE(name + " n=" + std::to_string(n));
      std::vector<float> r(n), f(n);
      Fill(&r, static_cast<uint32_t>(n) + 3000);
      Fill(&f, static_cast<uint32_t>(n) + 4000);
      // Force the sign-branch edge cases into the lane mix: +0, -0, and
      // values straddling zero land at different tail positions as n varies.
      f[0] = 0.0f;
      if (n > 1) f[n - 1] = -0.0f;
      if (n > 2) f[n / 2] = -1e-8f;

      std::vector<float> want(n), got(n);
      ref.stab_ratio(r.data(), f.data(), 1e-6f, want.data(), n);
      vec->stab_ratio(r.data(), f.data(), 1e-6f, got.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << "stab_ratio " << i << " f=" << f[i];
      }
    }
  }
}

TEST_F(SimdKernelTest, ReductionsWithinReassociationTolerance) {
  for (const auto& [name, vec] : VectorTables()) {
    const simd::KernelTable& ref = Scalar();
    for (int64_t n = 1; n <= kMaxN; ++n) {
      SCOPED_TRACE(name + " n=" + std::to_string(n));
      std::vector<float> a(n), b(n), base(n);
      Fill(&a, static_cast<uint32_t>(n) + 5000);
      Fill(&b, static_cast<uint32_t>(n) + 6000);
      Fill(&base, static_cast<uint32_t>(n) + 7000);

      double l1_dot = 0, l1_sum = 0;
      for (int64_t i = 0; i < n; ++i) {
        l1_dot += std::fabs(static_cast<double>(a[i]) * b[i]);
        l1_sum += std::fabs(a[i]);
      }

      ExpectReduction(ref.dot(a.data(), b.data(), n),
                      vec->dot(a.data(), b.data(), n), l1_dot);
      ExpectReduction(ref.sum(a.data(), n), vec->sum(a.data(), n), l1_sum);

      // axpy_dot: the y update is exact, the returned dot reassociates.
      std::vector<float> want = base, got = base;
      const float want_dot =
          ref.axpy_dot(1.25f, a.data(), want.data(), b.data(), n);
      const float got_dot =
          vec->axpy_dot(1.25f, a.data(), got.data(), b.data(), n);
      for (int64_t i = 0; i < n; ++i) {
        ASSERT_EQ(got[i], want[i]) << "axpy_dot y " << i;
      }
      ExpectReduction(want_dot, got_dot, l1_dot);
    }
  }
}

TEST_F(SimdKernelTest, GemmRowSweepContiguousAndStrided) {
  for (const auto& [name, vec] : VectorTables()) {
    const simd::KernelTable& ref = Scalar();
    // n sweeps the tail dimension (the vectorized axis); k and the A stride
    // cover the contiguous-row and strided-column (transpose_a) forms.
    for (int64_t n = 1; n <= kMaxN; ++n) {
      for (const int64_t k : {int64_t{1}, int64_t{7}, int64_t{17}}) {
        for (const int64_t a_stride : {int64_t{1}, int64_t{5}}) {
          SCOPED_TRACE(name + " n=" + std::to_string(n) +
                       " k=" + std::to_string(k) +
                       " stride=" + std::to_string(a_stride));
          std::vector<float> a(k * a_stride), b(k * n);
          Fill(&a, static_cast<uint32_t>(n * 31 + k));
          Fill(&b, static_cast<uint32_t>(n * 37 + k) + 8000);

          // Pre-poison the outputs: gemm_row owns the full row and must
          // overwrite it, not accumulate.
          std::vector<float> want(n, 1e30f), got(n, -1e30f);
          ref.gemm_row(a.data(), a_stride, b.data(), want.data(), k, n);
          vec->gemm_row(a.data(), a_stride, b.data(), got.data(), k, n);
          for (int64_t j = 0; j < n; ++j) {
            double l1 = 0;
            for (int64_t kk = 0; kk < k; ++kk) {
              l1 += std::fabs(static_cast<double>(a[kk * a_stride]) *
                              b[kk * n + j]);
            }
            ExpectReduction(want[j], got[j], l1);
          }
        }
      }
    }
  }
}

TEST_F(SimdKernelTest, ExpKernelsWithinUlpBoundAndFlushNegInfToZero) {
  const float neg_inf = -std::numeric_limits<float>::infinity();
  for (const auto& [name, vec] : VectorTables()) {
    const simd::KernelTable& ref = Scalar();
    for (int64_t n = 1; n <= kMaxN; ++n) {
      SCOPED_TRACE(name + " n=" + std::to_string(n));
      std::vector<float> x(n), m(n, 0.0f);
      Fill(&x, static_cast<uint32_t>(n) + 9000);
      for (int64_t i = 0; i < n; ++i) x[i] *= 4.0f;  // spread to [-8, 8)
      // Masked-attention edge cases at tail-sensitive positions: -inf must
      // come out exactly 0 at every level, deep-negative values flush.
      x[0] = neg_inf;
      if (n > 1) x[n - 1] = -100.0f;
      if (n > 2) x[n / 2] = neg_inf;

      std::vector<float> want(n), got(n);
      const float want_sum = ref.exp_shift_sum(x.data(), 0.5f, want.data(), n);
      const float got_sum = vec->exp_shift_sum(x.data(), 0.5f, got.data(), n);
      double l1 = 0;
      for (int64_t i = 0; i < n; ++i) {
        ExpectExp(want[i], got[i]);
        l1 += want[i];
      }
      ASSERT_EQ(got[0], 0.0f) << "exp(-inf) must flush to exactly 0";
      if (n > 2) ASSERT_EQ(got[n / 2], 0.0f);
      ExpectReduction(want_sum, got_sum, l1 + 1.0);

      ref.exp_sub(x.data(), m.data(), want.data(), n);
      vec->exp_sub(x.data(), m.data(), got.data(), n);
      for (int64_t i = 0; i < n; ++i) ExpectExp(want[i], got[i]);
      ASSERT_EQ(got[0], 0.0f);
    }
  }
}

// Op-level cross-check on a strided (non-trailing) softmax axis: the scalar
// and vectorized tables must agree within the exp tolerance for every odd
// axis length, including length-1 axes.
TEST_F(SimdKernelTest, SoftmaxStridedAxisAgreesAcrossLevels) {
  if (VectorTables().empty()) GTEST_SKIP() << "scalar-only build";
  const simd::IsaLevel best = simd::ActiveLevel();
  if (best == simd::IsaLevel::kScalar) GTEST_SKIP() << "no vector CPU support";

  for (const int64_t axis_len : {1, 2, 3, 5, 9, 17, 33}) {
    Tensor x = Tensor::Zeros(Shape{3, axis_len, 7});
    uint32_t s = static_cast<uint32_t>(axis_len) * 2654435761u;
    for (int64_t i = 0; i < x.numel(); ++i) {
      s = s * 1664525u + 1013904223u;
      x.data()[i] = static_cast<float>((s >> 8) & 0xFFFF) / 8192.0f - 4.0f;
    }

    simd::SetLevelForTesting(simd::IsaLevel::kScalar);
    const Tensor want = Softmax(x, 1);
    simd::SetLevelForTesting(best);
    const Tensor got = Softmax(x, 1);

    ASSERT_EQ(want.numel(), got.numel());
    for (int64_t i = 0; i < want.numel(); ++i) {
      ASSERT_NEAR(got.data()[i], want.data()[i],
                  1e-5 * std::fabs(want.data()[i]) + 1e-7)
          << "axis_len=" << axis_len << " i=" << i;
    }
  }
}

}  // namespace
}  // namespace causalformer
