#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <set>

#include "util/csv.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace causalformer {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, UniformIntIsUnbiasedOverSmallRange) {
  Rng rng(13);
  int counts[5] = {0};
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
  }
}

TEST(RngTest, UniformIntRespectsBound) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(3);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 3);
  }
}

TEST(RngTest, SplitStreamsAreDecorrelated) {
  Rng parent(19);
  Rng child = parent.Split();
  std::set<uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(parent.Next());
    seen.insert(child.Next());
  }
  EXPECT_EQ(seen.size(), 200u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::multiset<int> a(v.begin(), v.end()), b(orig.begin(), orig.end());
  EXPECT_EQ(a, b);
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::InvalidArgument("bad dims");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("bad dims"), std::string::npos);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StringUtilTest, StrFormatBasics) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
}

TEST(StringUtilTest, SplitJoinRoundTrip) {
  const auto parts = StrSplit("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(StrJoin(parts, ","), "a,b,,c");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(StrTrim("  x y\t\n"), "x y");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
}

TEST(StringUtilTest, MeanStdRendering) {
  EXPECT_EQ(MeanStd(0.68, 0.08), "0.68\xC2\xB1"
                                 "0.08");
}

TEST(TableTest, AlignsColumns) {
  Table t({"Dataset", "F1"});
  t.AddRow({"Diamond", "0.68"});
  t.AddRow({"V-structure", "0.77"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("Dataset"), std::string::npos);
  EXPECT_NE(s.find("V-structure"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("-------"), std::string::npos);
}

TEST(TableTest, MarkdownShape) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  const std::string md = t.ToMarkdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(1000, 10, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  std::atomic<int64_t> total{0};
  ParallelFor(8, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      ParallelFor(100, 10, [&](int64_t bb, int64_t ee) {
        total.fetch_add(ee - bb);
      });
    }
  });
  EXPECT_EQ(total.load(), 800);
}

TEST(ThreadPoolTest, DeeplyNestedParallelForRunsInline) {
  // Detector-under-serving shape: pool task -> matmul -> ParallelFor again.
  std::atomic<int64_t> total{0};
  ParallelFor(4, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      ParallelFor(4, 1, [&](int64_t bb, int64_t ee) {
        for (int64_t j = bb; j < ee; ++j) {
          ParallelFor(10, 1,
                      [&](int64_t bbb, int64_t eee) { total += eee - bbb; });
        }
      });
    }
  });
  EXPECT_EQ(total.load(), 160);
}

TEST(ThreadPoolTest, ConcurrentCallersDoNotWaitOnEachOther) {
  // Regression: ParallelFor used to block in ThreadPool::Wait() until the
  // pool-wide pending count hit zero, so one caller's completion depended on
  // every other thread's tasks. Hammer the pool from many threads at once;
  // each call must see exactly its own range, and all must terminate.
  constexpr int kThreads = 8;
  constexpr int kIterations = 50;
  std::vector<std::thread> threads;
  std::vector<std::atomic<int64_t>> sums(kThreads);
  for (auto& s : sums) s = 0;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &sums] {
      for (int it = 0; it < kIterations; ++it) {
        ParallelFor(64, 4, [&sums, t](int64_t b, int64_t e) {
          for (int64_t i = b; i < e; ++i) sums[t] += i;
        });
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(sums[t].load(), kIterations * (64 * 63 / 2));
  }
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(0, 1, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(CsvTest, WriteReadRoundTrip) {
  const std::string path = testing::TempDir() + "/cf_csv_test.csv";
  const std::vector<std::vector<double>> rows = {{1.5, -2.0}, {3.25, 4.0}};
  ASSERT_TRUE(WriteCsv(path, rows, {"x", "y"}).ok());
  auto readback = ReadCsv(path, /*skip_header=*/true);
  ASSERT_TRUE(readback.ok());
  ASSERT_EQ(readback->size(), 2u);
  EXPECT_DOUBLE_EQ((*readback)[0][0], 1.5);
  EXPECT_DOUBLE_EQ((*readback)[1][1], 4.0);
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileIsNotFound) {
  auto r = ReadCsv("/nonexistent/place/file.csv");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(CsvTest, RejectsNonNumericField) {
  const std::string path = testing::TempDir() + "/cf_csv_bad.csv";
  {
    std::vector<std::vector<double>> rows = {{1.0}};
    ASSERT_TRUE(WriteCsv(path, rows).ok());
    FILE* f = std::fopen(path.c_str(), "a");
    std::fputs("oops,1\n", f);
    std::fclose(f);
  }
  auto r = ReadCsv(path);
  EXPECT_FALSE(r.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace causalformer
