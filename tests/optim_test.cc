#include <gtest/gtest.h>

#include <cmath>

#include "optim/adam.h"
#include "optim/early_stopping.h"
#include "optim/sgd.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace causalformer {
namespace {

// Minimises f(x) = ||x - target||^2 and returns the final distance.
template <typename Opt>
double MinimizeQuadratic(Opt& opt, Tensor x, const Tensor& target, int steps) {
  for (int s = 0; s < steps; ++s) {
    opt.ZeroGrad();
    Sum(Square(Sub(x, target))).Backward();
    opt.Step();
  }
  double dist = 0.0;
  for (int64_t i = 0; i < x.numel(); ++i) {
    const double d = x.data()[i] - target.data()[i];
    dist += d * d;
  }
  return std::sqrt(dist);
}

TEST(SgdTest, ConvergesOnQuadratic) {
  Tensor x = Tensor::Full(Shape{4}, 5.0f, /*requires_grad=*/true);
  Tensor target = Tensor::FromVector(Shape{4}, {1, -1, 2, 0});
  optim::Sgd sgd({x}, /*lr=*/0.1f);
  EXPECT_LT(MinimizeQuadratic(sgd, x, target, 200), 1e-3);
}

TEST(SgdTest, MomentumAcceleratesConvergence) {
  Tensor target = Tensor::FromVector(Shape{1}, {3.0f});
  Tensor x1 = Tensor::Zeros(Shape{1}, true);
  Tensor x2 = Tensor::Zeros(Shape{1}, true);
  optim::Sgd plain({x1}, 0.01f);
  optim::Sgd momentum({x2}, 0.01f, 0.9f);
  const double d_plain = MinimizeQuadratic(plain, x1, target, 50);
  const double d_momentum = MinimizeQuadratic(momentum, x2, target, 50);
  EXPECT_LT(d_momentum, d_plain);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  Tensor x = Tensor::Full(Shape{6}, -4.0f, true);
  Tensor target = Tensor::FromVector(Shape{6}, {1, 2, 3, -1, -2, -3});
  optim::Adam adam({x}, 0.1f);
  EXPECT_LT(MinimizeQuadratic(adam, x, target, 400), 1e-2);
}

TEST(AdamTest, HandlesSparseGradientScales) {
  // Badly scaled quadratic: Adam's per-coordinate scaling should cope.
  Tensor x = Tensor::FromVector(Shape{2}, {5.0f, 5.0f}).set_requires_grad(true);
  Tensor scales = Tensor::FromVector(Shape{2}, {100.0f, 0.01f});
  optim::Adam adam({x}, 0.2f);
  for (int s = 0; s < 600; ++s) {
    adam.ZeroGrad();
    Sum(Mul(scales, Square(x))).Backward();
    adam.Step();
  }
  EXPECT_NEAR(x.data()[0], 0.0f, 0.05f);
  EXPECT_NEAR(x.data()[1], 0.0f, 0.35f);
}

TEST(AdamTest, WeightDecayShrinksParameters) {
  Tensor x = Tensor::Full(Shape{1}, 1.0f, true);
  optim::Adam adam({x},
                   optim::AdamOptions{.lr = 0.01f, .weight_decay = 0.5f});
  for (int s = 0; s < 100; ++s) {
    adam.ZeroGrad();
    // Zero data gradient: only decay acts.
    Sum(Scale(x, 0.0f)).Backward();
    adam.Step();
  }
  EXPECT_LT(x.data()[0], 1.0f);
}

TEST(OptimizerTest, ClipGradNormScalesDown) {
  Tensor x = Tensor::Zeros(Shape{3}, true);
  Tensor g = Tensor::FromVector(Shape{3}, {3.0f, 4.0f, 0.0f});
  x.AccumulateGrad(g);  // norm 5
  optim::Sgd sgd({x}, 0.1f);
  const double pre = sgd.ClipGradNorm(1.0);
  EXPECT_NEAR(pre, 5.0, 1e-5);
  double post = 0.0;
  for (int64_t i = 0; i < 3; ++i) {
    post += x.grad().data()[i] * x.grad().data()[i];
  }
  EXPECT_NEAR(std::sqrt(post), 1.0, 1e-4);
}

TEST(OptimizerTest, ClipGradNormNoopUnderLimit) {
  Tensor x = Tensor::Zeros(Shape{2}, true);
  x.AccumulateGrad(Tensor::FromVector(Shape{2}, {0.3f, 0.4f}));
  optim::Sgd sgd({x}, 0.1f);
  sgd.ClipGradNorm(10.0);
  EXPECT_FLOAT_EQ(x.grad().data()[0], 0.3f);
}

TEST(EarlyStoppingTest, StopsAfterPatienceExhausted) {
  optim::EarlyStopping stop(3, 1e-6);
  EXPECT_FALSE(stop.Update(1.0));
  EXPECT_FALSE(stop.Update(0.5));   // improvement
  EXPECT_FALSE(stop.Update(0.6));   // bad 1
  EXPECT_FALSE(stop.Update(0.55));  // bad 2
  EXPECT_TRUE(stop.Update(0.7));    // bad 3 -> stop
  EXPECT_DOUBLE_EQ(stop.best(), 0.5);
}

TEST(EarlyStoppingTest, ImprovementResetsCounter) {
  optim::EarlyStopping stop(2);
  EXPECT_FALSE(stop.Update(1.0));
  EXPECT_FALSE(stop.Update(1.1));  // bad 1
  EXPECT_FALSE(stop.Update(0.9));  // improvement resets
  EXPECT_FALSE(stop.Update(1.0));  // bad 1
  EXPECT_TRUE(stop.Update(1.0));   // bad 2
}

TEST(EarlyStoppingTest, MinDeltaGuardsTinyImprovements) {
  optim::EarlyStopping stop(2, /*min_delta=*/0.1);
  EXPECT_FALSE(stop.Update(1.0));
  EXPECT_FALSE(stop.Update(0.95));  // under min_delta -> bad 1
  EXPECT_TRUE(stop.Update(0.94));   // bad 2 -> stop
}

}  // namespace
}  // namespace causalformer
