#include <gtest/gtest.h>

#include <cmath>

#include "graph/metrics.h"

namespace causalformer {
namespace {

CausalGraph MakeTruth() {
  CausalGraph g(3);
  g.AddEdge(0, 1, 2);
  g.AddEdge(1, 2, 1);
  g.AddEdge(0, 0, 1);  // self-loop
  return g;
}

TEST(MetricsTest, PerfectPrediction) {
  const CausalGraph truth = MakeTruth();
  const PrfScores s = EvaluateGraph(truth, truth);
  EXPECT_DOUBLE_EQ(s.precision, 1.0);
  EXPECT_DOUBLE_EQ(s.recall, 1.0);
  EXPECT_DOUBLE_EQ(s.f1, 1.0);
}

TEST(MetricsTest, HandComputedConfusion) {
  const CausalGraph truth = MakeTruth();
  CausalGraph pred(3);
  pred.AddEdge(0, 1, 2);  // TP
  pred.AddEdge(2, 0, 1);  // FP
  // missing (1,2) and (0,0): 2 FN
  const ConfusionCounts c = CountEdges(truth, pred);
  EXPECT_EQ(c.true_positives, 1);
  EXPECT_EQ(c.false_positives, 1);
  EXPECT_EQ(c.false_negatives, 2);
  const PrfScores s = ScoresFromCounts(c);
  EXPECT_DOUBLE_EQ(s.precision, 0.5);
  EXPECT_NEAR(s.recall, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.f1, 2 * 0.5 * (1.0 / 3.0) / (0.5 + 1.0 / 3.0), 1e-12);
}

TEST(MetricsTest, ExcludeSelfLoops) {
  const CausalGraph truth = MakeTruth();
  CausalGraph pred(3);
  pred.AddEdge(0, 0, 1);
  const ConfusionCounts with_self = CountEdges(truth, pred, true);
  EXPECT_EQ(with_self.true_positives, 1);
  const ConfusionCounts without = CountEdges(truth, pred, false);
  EXPECT_EQ(without.true_positives, 0);
  EXPECT_EQ(without.false_negatives, 2);
}

TEST(MetricsTest, EmptyPredictionGivesZeroScores) {
  const CausalGraph truth = MakeTruth();
  const CausalGraph pred(3);
  const PrfScores s = EvaluateGraph(truth, pred);
  EXPECT_DOUBLE_EQ(s.precision, 0.0);
  EXPECT_DOUBLE_EQ(s.recall, 0.0);
  EXPECT_DOUBLE_EQ(s.f1, 0.0);
}

TEST(MetricsTest, PodCountsOnlyTruePositives) {
  const CausalGraph truth = MakeTruth();
  CausalGraph pred(3);
  pred.AddEdge(0, 1, 2);  // TP, delay correct
  pred.AddEdge(1, 2, 3);  // TP, delay wrong
  pred.AddEdge(2, 1, 9);  // FP: ignored by PoD
  EXPECT_DOUBLE_EQ(PrecisionOfDelay(truth, pred), 0.5);
}

TEST(MetricsTest, PodPerfect) {
  const CausalGraph truth = MakeTruth();
  EXPECT_DOUBLE_EQ(PrecisionOfDelay(truth, truth), 1.0);
}

TEST(MetricsTest, PodNoTruePositivesIsZero) {
  const CausalGraph truth = MakeTruth();
  CausalGraph pred(3);
  pred.AddEdge(2, 1, 1);
  EXPECT_DOUBLE_EQ(PrecisionOfDelay(truth, pred), 0.0);
}

TEST(MetricsTest, AurocPerfectRanking) {
  CausalGraph truth(2);
  truth.AddEdge(0, 1);
  ScoreMatrix scores(2);
  scores.set(0, 1, 0.9);
  scores.set(1, 0, 0.1);
  scores.set(0, 0, 0.2);
  scores.set(1, 1, 0.3);
  EXPECT_DOUBLE_EQ(Auroc(truth, scores), 1.0);
}

TEST(MetricsTest, AurocRandomScoresNearHalf) {
  CausalGraph truth(2);
  truth.AddEdge(0, 1);
  truth.AddEdge(1, 0);
  ScoreMatrix scores(2);  // all zeros -> total ties
  EXPECT_DOUBLE_EQ(Auroc(truth, scores), 0.5);
}

TEST(MetricsTest, AurocInvertedRankingIsZero) {
  CausalGraph truth(2);
  truth.AddEdge(0, 1);
  ScoreMatrix scores(2);
  scores.set(0, 1, 0.0);
  scores.set(1, 0, 1.0);
  scores.set(0, 0, 1.0);
  scores.set(1, 1, 1.0);
  EXPECT_DOUBLE_EQ(Auroc(truth, scores), 0.0);
}

TEST(MetricsTest, AuprcPerfect) {
  CausalGraph truth(2);
  truth.AddEdge(0, 1);
  ScoreMatrix scores(2);
  scores.set(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(Auprc(truth, scores), 1.0);
}

TEST(MetricsTest, MeanAndStd) {
  const auto [mean, stddev] = MeanAndStd({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(mean, 2.5);
  EXPECT_NEAR(stddev, std::sqrt(1.25), 1e-12);
  const auto [m0, s0] = MeanAndStd({});
  EXPECT_DOUBLE_EQ(m0, 0.0);
  EXPECT_DOUBLE_EQ(s0, 0.0);
}

}  // namespace
}  // namespace causalformer
