#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "tensor/ops.h"
#include "util/rng.h"

/// Finite-difference gradient checking for every differentiable op, run as a
/// parameterised suite so each op/shape combination is a distinct test case.

namespace causalformer {
namespace {

using ScalarFn = std::function<Tensor(const std::vector<Tensor>&)>;

struct GradCheckCase {
  std::string name;
  std::vector<Shape> input_shapes;
  ScalarFn fn;
  // Some ops need positive inputs (log, sqrt).
  bool positive_inputs = false;
};

void RunGradCheck(const GradCheckCase& c) {
  Rng rng(99);
  std::vector<Tensor> inputs;
  for (const auto& shape : c.input_shapes) {
    Tensor t = Tensor::Randn(shape, &rng, /*requires_grad=*/true);
    if (c.positive_inputs) {
      float* p = t.data();
      for (int64_t i = 0; i < t.numel(); ++i) p[i] = std::fabs(p[i]) + 0.5f;
    }
    inputs.push_back(t);
  }

  // Analytic gradients.
  Tensor out = c.fn(inputs);
  ASSERT_EQ(out.numel(), 1) << c.name << " must produce a scalar";
  out.Backward();

  const float eps = 1e-2f;
  for (size_t k = 0; k < inputs.size(); ++k) {
    Tensor& x = inputs[k];
    const Tensor analytic = x.grad();
    ASSERT_TRUE(analytic.defined()) << c.name << " input " << k;
    for (int64_t i = 0; i < x.numel(); ++i) {
      const float orig = x.data()[i];
      x.data()[i] = orig + eps;
      const float up = c.fn(inputs).item();
      x.data()[i] = orig - eps;
      const float down = c.fn(inputs).item();
      x.data()[i] = orig;
      const float numeric = (up - down) / (2.0f * eps);
      const float got = analytic.data()[i];
      const float tol = 2e-2f * std::max(1.0f, std::fabs(numeric));
      EXPECT_NEAR(got, numeric, tol)
          << c.name << " input " << k << " element " << i;
    }
  }
}

class GradCheckTest : public testing::TestWithParam<GradCheckCase> {};

TEST_P(GradCheckTest, MatchesFiniteDifferences) { RunGradCheck(GetParam()); }

std::vector<GradCheckCase> MakeCases() {
  std::vector<GradCheckCase> cases;
  auto add = [](const char* name, std::vector<Shape> shapes, ScalarFn fn,
                bool positive = false) {
    return GradCheckCase{name, std::move(shapes), std::move(fn), positive};
  };

  cases.push_back(add("add_same_shape", {Shape{3, 2}, Shape{3, 2}},
                      [](const auto& in) { return Sum(Add(in[0], in[1])); }));
  cases.push_back(add("add_broadcast", {Shape{3, 2}, Shape{2}},
                      [](const auto& in) {
                        return Sum(Square(Add(in[0], in[1])));
                      }));
  cases.push_back(add("sub", {Shape{4}, Shape{4}}, [](const auto& in) {
    return Sum(Square(Sub(in[0], in[1])));
  }));
  cases.push_back(add("mul_broadcast", {Shape{2, 3}, Shape{2, 1}},
                      [](const auto& in) { return Sum(Mul(in[0], in[1])); }));
  cases.push_back(add("div", {Shape{3}, Shape{3}},
                      [](const auto& in) { return Sum(Div(in[0], in[1])); },
                      /*positive=*/true));
  cases.push_back(add("neg", {Shape{3}},
                      [](const auto& in) { return Sum(Square(Neg(in[0]))); }));
  cases.push_back(add("scale", {Shape{5}}, [](const auto& in) {
    return Sum(Scale(in[0], 2.5f));
  }));
  cases.push_back(add("exp", {Shape{4}},
                      [](const auto& in) { return Sum(Exp(in[0])); }));
  cases.push_back(add("log", {Shape{4}},
                      [](const auto& in) { return Sum(Log(in[0])); },
                      /*positive=*/true));
  cases.push_back(add("sqrt", {Shape{4}},
                      [](const auto& in) { return Sum(Sqrt(in[0])); },
                      /*positive=*/true));
  cases.push_back(add("tanh", {Shape{6}},
                      [](const auto& in) { return Sum(Tanh(in[0])); }));
  cases.push_back(add("sigmoid", {Shape{6}},
                      [](const auto& in) { return Sum(Sigmoid(in[0])); }));
  cases.push_back(add("leaky_relu", {Shape{8}}, [](const auto& in) {
    return Sum(Square(LeakyRelu(in[0], 0.1f)));
  }));
  cases.push_back(add("square", {Shape{5}},
                      [](const auto& in) { return Sum(Square(in[0])); }));
  cases.push_back(add("pow", {Shape{4}},
                      [](const auto& in) { return Sum(Pow(in[0], 3.0f)); },
                      /*positive=*/true));
  cases.push_back(add("matmul_2d", {Shape{3, 4}, Shape{4, 2}},
                      [](const auto& in) {
                        return Sum(Square(MatMul(in[0], in[1])));
                      }));
  cases.push_back(add("matmul_batched", {Shape{2, 3, 4}, Shape{2, 4, 2}},
                      [](const auto& in) {
                        return Sum(MatMul(in[0], in[1]));
                      }));
  cases.push_back(add("matmul_batched_shared_rhs", {Shape{2, 3, 4}, Shape{4, 2}},
                      [](const auto& in) {
                        return Sum(Square(MatMul(in[0], in[1])));
                      }));
  cases.push_back(add("sum_axis0", {Shape{3, 4}}, [](const auto& in) {
    return Sum(Square(Sum(in[0], 0)));
  }));
  cases.push_back(add("sum_axis1_keepdim", {Shape{3, 4}}, [](const auto& in) {
    return Sum(Square(Sum(in[0], 1, true)));
  }));
  cases.push_back(add("mean_axis", {Shape{2, 5}}, [](const auto& in) {
    return Sum(Square(Mean(in[0], 1)));
  }));
  cases.push_back(add("l1_norm", {Shape{6}},
                      [](const auto& in) { return L1Norm(in[0]); },
                      /*positive=*/true));
  cases.push_back(add("reshape", {Shape{2, 6}}, [](const auto& in) {
    return Sum(Square(Reshape(in[0], Shape{3, 4})));
  }));
  cases.push_back(add("transpose", {Shape{2, 3, 4}}, [](const auto& in) {
    return Sum(Square(Transpose(in[0], 0, 2)));
  }));
  cases.push_back(add("slice", {Shape{4, 5}}, [](const auto& in) {
    return Sum(Square(Slice(in[0], 1, 1, 4)));
  }));
  cases.push_back(add("concat", {Shape{2, 3}, Shape{2, 2}},
                      [](const auto& in) {
                        return Sum(Square(Concat({in[0], in[1]}, 1)));
                      }));
  cases.push_back(add("softmax", {Shape{3, 4}}, [](const auto& in) {
    // Weighted sum makes the softmax jacobian non-trivial.
    Tensor w = Tensor::FromVector(
        Shape{3, 4}, {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12});
    return Sum(Mul(Softmax(in[0], 1), w));
  }));
  cases.push_back(add("softmax_axis0", {Shape{3, 2}}, [](const auto& in) {
    Tensor w = Tensor::FromVector(Shape{3, 2}, {1, -1, 2, -2, 3, -3});
    return Sum(Mul(Softmax(in[0], 0), w));
  }));
  cases.push_back(add("composite_mlp", {Shape{4, 3}, Shape{3, 2}, Shape{2}},
                      [](const auto& in) {
                        Tensor h = Tanh(MatMul(in[0], in[1]));
                        return Sum(Square(Add(h, in[2])));
                      }));
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllOps, GradCheckTest, testing::ValuesIn(MakeCases()),
                         [](const testing::TestParamInfo<GradCheckCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace causalformer
