#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "core/detector.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "data/windowing.h"
#include "nn/serialize.h"
#include "serve/inference_engine.h"
#include "serve/model_registry.h"
#include "serve/score_cache.h"
#include "serve_test_util.h"
#include "util/thread_pool.h"

namespace causalformer {
namespace serve {
namespace {

using testutil::ExpectSameDetection;
using testutil::PoolHostage;
using testutil::RandomWindows;
using testutil::TinyModel;
using testutil::TinyModelOptions;

TEST(ModelRegistryTest, LoadUnloadList) {
  Rng rng(3);
  auto model = TinyModel();
  const std::string path = testing::TempDir() + "/registry_roundtrip.cfpm";
  ASSERT_TRUE(nn::SaveParameters(*model, path).ok());

  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("m1", path, TinyModelOptions()).ok());
  EXPECT_TRUE(registry.Has("m1"));
  EXPECT_FALSE(registry.Has("m2"));
  // Names are unique.
  EXPECT_FALSE(registry.Load("m1", path, TinyModelOptions()).ok());

  const auto infos = registry.List();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].name, "m1");
  EXPECT_EQ(infos[0].checkpoint_path, path);
  EXPECT_EQ(infos[0].num_parameters, model->NumParameters());

  // A handle outlives Unload (in-flight queries keep the model alive).
  const auto handle = registry.Get("m1");
  ASSERT_NE(handle, nullptr);
  EXPECT_TRUE(registry.Unload("m1").ok());
  EXPECT_EQ(registry.Get("m1"), nullptr);
  EXPECT_EQ(registry.Unload("m1").code(), StatusCode::kNotFound);
  EXPECT_EQ(handle->options().num_series, 3);
  std::remove(path.c_str());
}

TEST(ModelRegistryTest, MissingCheckpointIsNotFound) {
  ModelRegistry registry;
  EXPECT_EQ(registry.Load("m", "/nonexistent/ck.cfpm", TinyModelOptions()).code(),
            StatusCode::kNotFound);
}

TEST(ModelRegistryTest, ArchitectureMismatchIsRejected) {
  auto model = TinyModel();
  const std::string path = testing::TempDir() + "/registry_arch.cfpm";
  ASSERT_TRUE(nn::SaveParameters(*model, path).ok());
  ModelRegistry registry;
  core::ModelOptions other = TinyModelOptions(/*num_series=*/5);
  EXPECT_FALSE(registry.Load("m", path, other).ok());
  std::remove(path.c_str());
}

// The serialize round-trip guarantee the serving story rests on: train a
// model, checkpoint it, reload through the registry, and the reloaded model
// must produce *bit-identical* detection scores.
TEST(ModelRegistryTest, TrainedRoundTripDetectsIdentically) {
  Rng rng(11);
  data::SyntheticOptions data_opt;
  data_opt.length = 160;
  const data::Dataset dataset =
      GenerateSynthetic(data::SyntheticStructure::kMediator, data_opt, &rng);

  core::ModelOptions mopt = TinyModelOptions(dataset.num_series(), 8);
  auto model = std::make_unique<core::CausalityTransformer>(mopt, &rng);
  core::TrainOptions topt;
  topt.max_epochs = 3;
  topt.stride = 2;
  Tensor windows;
  TrainCausalityTransformer(model.get(), dataset.series, topt, &rng, &windows);

  const std::string path = testing::TempDir() + "/registry_trained.cfpm";
  ASSERT_TRUE(nn::SaveParameters(*model, path).ok());

  ModelRegistry registry;
  ASSERT_TRUE(registry.Load("trained", path, mopt).ok());
  const auto restored = registry.Get("trained");
  ASSERT_NE(restored, nullptr);

  const core::DetectorOptions dopt;
  const auto original =
      core::DetectCausalGraphBatched(*model, {windows}, dopt);
  const auto reloaded =
      core::DetectCausalGraphBatched(*restored, {windows}, dopt);
  ASSERT_EQ(original.size(), 1u);
  ASSERT_EQ(reloaded.size(), 1u);
  ExpectSameDetection(original[0], reloaded[0]);
  std::remove(path.c_str());
}

TEST(ScoreCacheTest, LruEvictionAndStats) {
  ScoreCache cache(/*capacity=*/2);
  auto result = [&](int n) {
    return std::make_shared<const core::DetectionResult>(n);
  };
  CacheKey a{"m", {1, 1}, "o"};
  CacheKey b{"m", {2, 2}, "o"};
  CacheKey c{"m", {3, 3}, "o"};

  EXPECT_EQ(cache.Get(a), nullptr);
  cache.Put(a, result(2));
  cache.Put(b, result(3));
  EXPECT_NE(cache.Get(a), nullptr);  // refreshes a; b is now LRU
  cache.Put(c, result(4));           // evicts b
  EXPECT_EQ(cache.Get(b), nullptr);
  EXPECT_NE(cache.Get(a), nullptr);
  EXPECT_NE(cache.Get(c), nullptr);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.capacity, 2u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.hits, 3u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(ScoreCacheTest, EraseModelDropsOnlyThatModel) {
  ScoreCache cache(8);
  auto result = std::make_shared<const core::DetectionResult>(2);
  cache.Put({"m1", {1, 1}, "o"}, result);
  cache.Put({"m2", {1, 1}, "o"}, result);
  cache.EraseModel("m1");
  EXPECT_EQ(cache.Get({"m1", {1, 1}, "o"}), nullptr);
  EXPECT_NE(cache.Get({"m2", {1, 1}, "o"}), nullptr);
}

TEST(ScoreCacheTest, DifferentOptionsDifferentEntries) {
  core::DetectorOptions a;
  core::DetectorOptions b;
  b.use_relevance = false;
  EXPECT_NE(EncodeDetectorOptions(a), EncodeDetectorOptions(b));
  EXPECT_FALSE(SameDetectorOptions(a, b));
  EXPECT_TRUE(SameDetectorOptions(a, a));
}

TEST(ScoreCacheTest, WindowHashSensitivity) {
  Rng rng(5);
  Tensor w1 = Tensor::Randn(Shape{2, 3, 8}, &rng);
  Tensor w2 = w1.Clone();
  EXPECT_TRUE(HashWindows(w1) == HashWindows(w2));
  w2.data()[0] += 1.0f;
  EXPECT_FALSE(HashWindows(w1) == HashWindows(w2));
}

TEST(ScoreCacheTest, TtlExpiresIdleEntries) {
  // A controllable clock so the test ages entries deterministically.
  double now = 100.0;
  ScoreCacheOptions options;
  options.capacity = 8;
  options.ttl_seconds = 10.0;
  options.clock_for_testing = [&now] { return now; };
  ScoreCache cache(options);
  auto result = std::make_shared<const core::DetectionResult>(2);

  CacheKey a{"m", {1, 1}, "o"};
  CacheKey b{"m", {2, 2}, "o"};
  cache.Put(a, result);
  now += 6;
  cache.Put(b, result);
  EXPECT_NE(cache.Get(a), nullptr);  // age 6 < ttl; Get does not reset age
  now += 6;                          // a is 12 old, b is 6 old
  EXPECT_EQ(cache.Get(a), nullptr);  // expired, counted below
  EXPECT_NE(cache.Get(b), nullptr);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.expirations, 1u);
  EXPECT_EQ(stats.evictions, 0u);  // age-out is not an LRU eviction
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.ttl_seconds, 10.0);

  // A Put refresh makes the entry young again.
  now += 6;  // b is 12 old
  cache.Put(b, result);
  now += 6;
  EXPECT_NE(cache.Get(b), nullptr);  // 6 since the refresh
}

TEST(ScoreCacheTest, PruneExpiredDropsEveryStaleEntry) {
  double now = 0.0;
  ScoreCacheOptions options;
  options.capacity = 8;
  options.ttl_seconds = 5.0;
  options.clock_for_testing = [&now] { return now; };
  ScoreCache cache(options);
  auto result = std::make_shared<const core::DetectionResult>(2);
  cache.Put({"m", {1, 1}, "o"}, result);
  cache.Put({"m", {2, 2}, "o"}, result);
  now = 4;
  cache.Put({"m", {3, 3}, "o"}, result);
  EXPECT_EQ(cache.PruneExpired(), 0u);  // nothing past 5s yet
  now = 7;
  EXPECT_EQ(cache.PruneExpired(), 2u);  // the two 7s-old entries
  const auto stats = cache.stats();
  EXPECT_EQ(stats.size, 1u);
  EXPECT_EQ(stats.expirations, 2u);
}

TEST(ScoreCacheTest, ZeroTtlNeverExpires) {
  double now = 0.0;
  ScoreCacheOptions options;
  options.capacity = 4;
  options.ttl_seconds = 0;
  options.clock_for_testing = [&now] { return now; };
  ScoreCache cache(options);
  auto result = std::make_shared<const core::DetectionResult>(2);
  cache.Put({"m", {1, 1}, "o"}, result);
  now = 1e9;
  EXPECT_NE(cache.Get({"m", {1, 1}, "o"}), nullptr);
  EXPECT_EQ(cache.PruneExpired(), 0u);
  EXPECT_EQ(cache.stats().expirations, 0u);
}

TEST(ScoreCacheTest, ColumnDigestsComposeToHashWindows) {
  // The incremental-hash identity at the score-cache level: folding
  // per-time-step column digests reproduces HashWindows of a [1, N, T]
  // tensor exactly.
  Rng rng(17);
  const Tensor window = Tensor::Randn(Shape{1, 4, 6}, &rng);
  std::vector<ColumnDigest> digests;
  for (int64_t t = 0; t < 6; ++t) {
    // Column t: the 4 series values, stride T apart in [1, N, T] layout.
    digests.push_back(HashWindowColumn(window.data() + t, 4, 6));
  }
  const WindowHash combined = CombineColumnDigests(digests, 4);
  const WindowHash direct = HashWindows(window);
  EXPECT_TRUE(combined == direct);
}

TEST(InferenceEngineTest, RejectsUnknownModelAndBadGeometry) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", TinyModel()).ok());
  InferenceEngine engine(&registry);

  DiscoveryRequest unknown;
  unknown.model = "nope";
  unknown.windows = RandomWindows(2, 1);
  EXPECT_EQ(engine.Discover(std::move(unknown)).status.code(),
            StatusCode::kNotFound);

  DiscoveryRequest bad;
  bad.model = "m";
  Rng rng(2);
  bad.windows = Tensor::Randn(Shape{2, 5, 8}, &rng);  // wrong N
  EXPECT_EQ(engine.Discover(std::move(bad)).status.code(),
            StatusCode::kInvalidArgument);

  DiscoveryRequest empty;
  empty.model = "m";
  EXPECT_EQ(engine.Discover(std::move(empty)).status.code(),
            StatusCode::kInvalidArgument);

  // Malformed detector options must be rejected up front — inside the batch
  // executor they would trip a CF_CHECK and abort the whole service.
  DiscoveryRequest bad_options;
  bad_options.model = "m";
  bad_options.windows = RandomWindows(2, 3);
  bad_options.options.max_windows = 0;
  EXPECT_EQ(engine.Discover(std::move(bad_options)).status.code(),
            StatusCode::kInvalidArgument);

  DiscoveryRequest bad_clusters;
  bad_clusters.model = "m";
  bad_clusters.windows = RandomWindows(2, 4);
  bad_clusters.options.top_clusters = 5;  // > num_clusters
  EXPECT_EQ(engine.Discover(std::move(bad_clusters)).status.code(),
            StatusCode::kInvalidArgument);
}

TEST(InferenceEngineTest, AnswersAndCachesRepeatQueries) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", TinyModel()).ok());
  InferenceEngine engine(&registry);

  DiscoveryRequest request;
  request.model = "m";
  request.windows = RandomWindows(4, 21);

  const DiscoveryResponse cold = engine.Discover(request);
  ASSERT_TRUE(cold.status.ok());
  ASSERT_NE(cold.result, nullptr);
  EXPECT_FALSE(cold.cache_hit);
  EXPECT_GE(cold.batch_size, 1);

  const DiscoveryResponse warm = engine.Discover(request);
  ASSERT_TRUE(warm.status.ok());
  EXPECT_TRUE(warm.cache_hit);
  // The very same shared result object is handed back.
  EXPECT_EQ(warm.result.get(), cold.result.get());
  EXPECT_EQ(engine.cache_stats().hits, 1u);

  // A different window batch is a different key.
  DiscoveryRequest other;
  other.model = "m";
  other.windows = RandomWindows(4, 22);
  const DiscoveryResponse miss = engine.Discover(std::move(other));
  ASSERT_TRUE(miss.status.ok());
  EXPECT_FALSE(miss.cache_hit);
}

TEST(InferenceEngineTest, UnloadDropsCacheAndRejectsFutureQueries) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", TinyModel()).ok());
  InferenceEngine engine(&registry);

  DiscoveryRequest request;
  request.model = "m";
  request.windows = RandomWindows(2, 31);
  ASSERT_TRUE(engine.Discover(request).status.ok());

  ASSERT_TRUE(engine.UnloadModel("m").ok());
  EXPECT_EQ(engine.Discover(request).status.code(), StatusCode::kNotFound);
}

// Coalesced micro-batches must answer exactly what one-at-a-time requests
// answer. Block the global pool so submissions pile up, then compare every
// batched response against a fresh sequential run (caching disabled so each
// run computes).
TEST(InferenceEngineTest, BatchedResultsMatchSequential) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", TinyModel()).ok());
  EngineOptions opts;
  opts.cache_capacity = 0;  // force full computation on every submit
  opts.batcher.max_in_flight_batches = 1;
  InferenceEngine engine(&registry, opts);

  constexpr int kRequests = 6;
  std::vector<Tensor> windows;
  for (int i = 0; i < kRequests; ++i) {
    windows.push_back(RandomWindows(2 + (i % 3), 100 + i));
  }

  // Hold every pool worker hostage so all submissions queue behind the first
  // batch and must coalesce.
  PoolHostage hostage;

  std::vector<std::future<DiscoveryResponse>> futures;
  for (int i = 0; i < kRequests; ++i) {
    DiscoveryRequest request;
    request.model = "m";
    request.windows = windows[i];
    futures.push_back(engine.SubmitAsync(std::move(request)));
  }
  hostage.Release();

  std::vector<DiscoveryResponse> batched;
  for (auto& f : futures) batched.push_back(f.get());

  int max_batch = 0;
  for (const auto& r : batched) {
    ASSERT_TRUE(r.status.ok()) << r.status.ToString();
    max_batch = std::max(max_batch, r.batch_size);
  }
  // All submissions were queued before any batch could run, so at least one
  // dispatched batch carried several requests.
  EXPECT_GE(max_batch, 2);
  EXPECT_GE(engine.batcher_stats().coalesced, 2u);

  for (int i = 0; i < kRequests; ++i) {
    DiscoveryRequest request;
    request.model = "m";
    request.windows = windows[i];
    const DiscoveryResponse solo = engine.Discover(std::move(request));
    ASSERT_TRUE(solo.status.ok());
    ExpectSameDetection(*batched[i].result, *solo.result);
  }
}

TEST(InferenceEngineTest, ConcurrentSubmittersAllComplete) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("a", TinyModel(1)).ok());
  ASSERT_TRUE(registry.Register("b", TinyModel(2)).ok());
  InferenceEngine engine(&registry);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        DiscoveryRequest request;
        request.model = (t % 2 == 0) ? "a" : "b";
        request.windows = RandomWindows(2, 1000 + t * kPerThread + i % 3);
        if (engine.Discover(std::move(request)).status.ok()) ++ok;
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
}

TEST(InferenceEngineTest, HotSwapWhileQueuedRunsOnPinnedModel) {
  // A 1-worker pool runs kernels inline (ParallelFor's workers<=1 branch), so
  // requests would finish before the swap and nothing racy is exercised.
  if (ThreadPool::Global().num_threads() <= 1) {
    GTEST_SKIP() << "needs a multi-worker pool to hold requests queued";
  }
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", TinyModel()).ok());
  InferenceEngine engine(&registry);

  // Hold every pool worker hostage so the executor's kernels cannot finish
  // and submissions stay queued while the model is swapped underneath them.
  PoolHostage hostage;

  std::vector<std::future<DiscoveryResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    DiscoveryRequest request;
    request.model = "m";
    request.windows = RandomWindows(2, 500 + static_cast<uint64_t>(i));
    futures.push_back(engine.SubmitAsync(std::move(request)));
  }

  // Swap "m" to a different architecture while the requests are in flight.
  ASSERT_TRUE(engine.UnloadModel("m").ok());
  Rng rng(11);
  ASSERT_TRUE(registry
                  .Register("m", std::make_unique<core::CausalityTransformer>(
                                     TinyModelOptions(5, 12), &rng))
                  .ok());

  hostage.Release();

  // Every queued request was validated against the old 3-series handle and
  // must execute on it: not fail NotFound after the unload, and never reach
  // the detector's geometry CF_CHECKs against the new 5-series model (which
  // would abort the process).
  for (auto& f : futures) {
    const DiscoveryResponse response = f.get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    EXPECT_EQ(response.result->scores.num_series(), 3);
  }
}

TEST(InferenceEngineTest, HotSwapDoesNotServeStaleCachedScores) {
  // See HotSwapWhileQueuedRunsOnPinnedModel: the hostage trick needs workers.
  if (ThreadPool::Global().num_threads() <= 1) {
    GTEST_SKIP() << "needs a multi-worker pool to hold requests queued";
  }
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register("m", TinyModel(1)).ok());
  InferenceEngine engine(&registry);

  // Hostage the pool so the request is still queued when the swap happens.
  PoolHostage hostage;

  DiscoveryRequest request;
  request.model = "m";
  request.windows = RandomWindows(2, 600);
  auto queued = engine.SubmitAsync(request);

  // Swap "m" to a same-geometry model with different weights while queued.
  ASSERT_TRUE(engine.UnloadModel("m").ok());
  ASSERT_TRUE(registry.Register("m", TinyModel(2)).ok());

  hostage.Release();

  // The queued request runs on the pinned old model and fills the cache —
  // after UnloadModel already erased "m".
  ASSERT_TRUE(queued.get().status.ok());

  // A same-window query against the swapped-in model must recompute, not be
  // served the old model's scores: its cache key carries the new registry
  // generation, so the stale entry cannot match.
  const DiscoveryResponse fresh = engine.Discover(request);
  ASSERT_TRUE(fresh.status.ok());
  EXPECT_FALSE(fresh.cache_hit);

  // The recomputed result is cached under the new generation as usual.
  EXPECT_TRUE(engine.Discover(request).cache_hit);
}

TEST(MicroBatcherTest, QueueFullRejectsAndShutdownDrains) {
  // An executor that blocks until released lets the queue fill.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  BatcherOptions opts;
  opts.max_batch_requests = 1;
  opts.max_queue = 2;
  opts.max_in_flight_batches = 1;
  auto executor = [&](std::vector<BatchItem> items) {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    }
    for (auto& item : items) {
      DiscoveryResponse response;
      response.batch_size = static_cast<int>(items.size());
      item.promise.set_value(std::move(response));
    }
  };

  std::vector<std::future<DiscoveryResponse>> futures;
  {
    MicroBatcher batcher(opts, executor);
    // Occupy the executor with the first request, then wait until it has
    // actually been dispatched so the queue drains no further.
    {
      DiscoveryRequest request;
      request.model = "m";
      request.windows = RandomWindows(1, 40);
      futures.push_back(
          batcher.Submit(std::move(request), CacheKey{}, nullptr));
    }
    while (batcher.stats().batches == 0) std::this_thread::yield();
    // With the dispatcher stalled (in-flight cap 1), max_queue accepts then a
    // rejection, deterministically.
    bool saw_rejection = false;
    for (int i = 0; i < 4 && !saw_rejection; ++i) {
      DiscoveryRequest request;
      request.model = "m";
      request.windows = RandomWindows(1, 41 + i);
      auto future = batcher.Submit(std::move(request), CacheKey{}, nullptr);
      if (future.wait_for(std::chrono::seconds(0)) ==
          std::future_status::ready) {
        EXPECT_EQ(future.get().status.code(), StatusCode::kFailedPrecondition);
        saw_rejection = true;
      } else {
        futures.push_back(std::move(future));
      }
    }
    EXPECT_TRUE(saw_rejection);
    EXPECT_GE(batcher.stats().rejected, 1u);
    {
      std::lock_guard<std::mutex> lock(mu);
      release = true;
    }
    cv.notify_all();
    // Destructor drains: every accepted request resolves (possibly with a
    // shutdown status for still-queued ones).
  }
  for (auto& f : futures) {
    f.wait();  // must not hang
  }
}

}  // namespace
}  // namespace serve
}  // namespace causalformer
